// cg-solver runs a real distributed conjugate-gradient solve over encrypted
// MPI and verifies the numerics — demonstrating that the encryption layer is
// transparent to a genuine HPC computation (the workload class the paper's
// CG benchmark represents), not just to synthetic traffic.
//
// The system is a 1D Poisson problem (tridiagonal, symmetric positive
// definite) row-partitioned across ranks. Every halo exchange travels as
// AES-GCM ciphertext; dot products use small allreduces. Run with:
//
//	go run ./examples/cg-solver [-n 4096] [-ranks 4] [-codec aesstd]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"encmpi"
)

func main() {
	n := flag.Int("n", 4096, "global problem size")
	ranks := flag.Int("ranks", 4, "number of ranks")
	codecName := flag.String("codec", "aesstd", "AEAD codec (aesstd, aessoft, aesref)")
	flag.Parse()

	if *n%*ranks != 0 {
		log.Fatalf("n=%d must be divisible by ranks=%d", *n, *ranks)
	}
	key := []byte("0123456789abcdef0123456789abcdef")
	local := *n / *ranks

	finalResidual := make([]float64, *ranks)
	iterations := make([]int, *ranks)

	err := encmpi.RunShm(*ranks, func(c *encmpi.Comm) {
		sess, err := encmpi.NewSession(key, encmpi.WithSessionCodec(*codecName))
		if err != nil {
			log.Fatal(err)
		}
		e, err := sess.Attach(c)
		if err != nil {
			log.Fatal(err)
		}
		res, iters := solveCG(e, *n, local)
		finalResidual[c.Rank()] = res
		iterations[c.Rank()] = iters
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CG over encrypted MPI (%s): n=%d, ranks=%d\n", *codecName, *n, *ranks)
	fmt.Printf("converged in %d iterations, final residual %.3e\n", iterations[0], finalResidual[0])
	if finalResidual[0] > 1e-8 {
		log.Fatal("FAIL: residual did not converge")
	}
	fmt.Println("PASS: solution verified against the analytic answer")
}

// solveCG solves A·x = b for the 1D Laplacian A = tridiag(-1, 2, -1) with b
// chosen so the exact solution is known, and returns the final residual norm
// and iteration count.
func solveCG(e *encmpi.EncryptedComm, n, local int) (float64, int) {
	rank, p := e.Rank(), e.Size()
	lo := rank * local

	// Exact solution with a full spectrum (so CG needs many iterations and
	// therefore many encrypted halo exchanges); b = A·x*.
	exact := func(gi int) float64 {
		t := float64(gi+1) / float64(n+1)
		return math.Sin(math.Pi*t) + 0.5*math.Cos(2.7*float64(gi)) + 0.25*t*t
	}
	b := make([]float64, local)
	for i := 0; i < local; i++ {
		gi := lo + i
		left, right := 0.0, 0.0
		if gi > 0 {
			left = exact(gi - 1)
		}
		if gi < n-1 {
			right = exact(gi + 1)
		}
		b[i] = 2*exact(gi) - left - right
	}

	// matvec computes y = A·v, exchanging one-element halos with neighbors
	// through the encrypted layer.
	matvec := func(v []float64) []float64 {
		leftGhost, rightGhost := 0.0, 0.0
		var reqs []*encmpi.EncryptedRequest
		if rank > 0 {
			reqs = append(reqs, e.Irecv(rank-1, 0))
		}
		if rank < p-1 {
			reqs = append(reqs, e.Irecv(rank+1, 1))
		}
		if rank > 0 {
			e.Send(rank-1, 1, encmpi.Float64Buffer(v[:1]))
		}
		if rank < p-1 {
			e.Send(rank+1, 0, encmpi.Float64Buffer(v[local-1:]))
		}
		for _, r := range reqs {
			buf, st, err := e.Wait(r)
			if err != nil {
				log.Fatalf("halo decrypt failed: %v", err)
			}
			val := encmpi.Float64s(buf)[0]
			if st.Source == rank-1 {
				leftGhost = val
			} else {
				rightGhost = val
			}
		}
		y := make([]float64, local)
		for i := range y {
			l, r := leftGhost, rightGhost
			if i > 0 {
				l = v[i-1]
			}
			if i < local-1 {
				r = v[i+1]
			}
			y[i] = 2*v[i] - l - r
		}
		return y
	}

	// dot computes a global inner product with a tiny allreduce.
	dot := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		out, err := e.Allreduce(encmpi.Float64Buffer([]float64{s}), encmpi.Float64, encmpi.OpSum)
		if err != nil {
			log.Fatalf("rank %d: allreduce: %v", rank, err)
		}
		return encmpi.Float64s(out)[0]
	}

	x := make([]float64, local)
	r := append([]float64(nil), b...)
	d := append([]float64(nil), b...)
	rr := dot(r, r)
	iters := 0
	for ; iters < 10*n && math.Sqrt(rr) > 1e-10; iters++ {
		ad := matvec(d)
		alpha := rr / dot(d, ad)
		for i := range x {
			x[i] += alpha * d[i]
			r[i] -= alpha * ad[i]
		}
		rrNew := dot(r, r)
		beta := rrNew / rr
		rr = rrNew
		for i := range d {
			d[i] = r[i] + beta*d[i]
		}
	}

	// Verify against the analytic solution.
	var worst float64
	for i := range x {
		if diff := math.Abs(x[i] - exact(lo+i)); diff > worst {
			worst = diff
		}
	}
	out, err := e.Allreduce(encmpi.Float64Buffer([]float64{worst}), encmpi.Float64, encmpi.OpMax)
	if err != nil {
		log.Fatalf("rank %d: allreduce: %v", rank, err)
	}
	maxErr := encmpi.Float64s(out)[0]
	if maxErr > 1e-6 {
		log.Fatalf("rank %d: solution error %.3e exceeds tolerance", rank, maxErr)
	}
	return math.Sqrt(rr), iters
}
