package encmpi_test

import (
	"bytes"
	"fmt"
	"testing"

	"encmpi"
)

// TestShmRingZeroCopySession drives session-sealed eager traffic through the
// shm slot rings and pins the zero-copy contract end to end: the sender
// seals straight into a ring slot (SealsInPlace), the receiver opens the
// same slot in place (OpensInPlace), payloads verify, and every acquired
// slot is retired by job end. The exchange is a ping-pong so at most one
// slot is in flight at a time: every message must take the ring, none may
// spill to the pool fallback.
func TestShmRingZeroCopySession(t *testing.T) {
	key := sessionKey(0x3C)
	const msgs = 24
	reg := encmpi.NewRegistry(2)
	err := encmpi.RunShm(2, func(c *encmpi.Comm) {
		sess, err := encmpi.NewSession(key)
		if err != nil {
			t.Error(err)
			return
		}
		e, err := sess.Attach(c)
		if err != nil {
			t.Error(err)
			return
		}
		peer := 1 - c.Rank()
		for i := 0; i < msgs; i++ {
			want := []byte(fmt.Sprintf("ring record %d", i))
			if c.Rank() == 0 {
				if err := e.Send(peer, i, encmpi.Bytes(want)); err != nil {
					t.Errorf("send %d: %v", i, err)
				}
			}
			got, _, err := e.Recv(peer, i)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			if !bytes.Equal(got.Data, want) {
				t.Errorf("message %d: got %q", i, got.Data)
			}
			if c.Rank() == 1 {
				if err := e.Send(peer, i, encmpi.Bytes(want)); err != nil {
					t.Errorf("echo %d: %v", i, err)
				}
			}
		}
	}, encmpi.WithMetrics(reg), encmpi.WithShmRing(8, 0))
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for rank := 0; rank < 2; rank++ {
		if got := snap.Ranks[rank].Crypto.SealsInPlace; got != msgs {
			t.Errorf("rank %d sealed %d records in place, want %d", rank, got, msgs)
		}
		if got := snap.Ranks[rank].Crypto.OpensInPlace; got != msgs {
			t.Errorf("rank %d opened %d records in place, want %d", rank, got, msgs)
		}
	}
	if snap.Ring.Acquired != 2*msgs {
		t.Errorf("ring slots acquired %d, want %d", snap.Ring.Acquired, 2*msgs)
	}
	if snap.Ring.Fallbacks != 0 {
		t.Errorf("ping-pong spilled to pool fallback %d times", snap.Ring.Fallbacks)
	}
	if snap.Ring.Retired != snap.Ring.Acquired || snap.Ring.Depth != 0 {
		t.Errorf("slot leak: %+v", snap.Ring)
	}
	if snap.Total.Crypto.AuthFailures != 0 {
		t.Errorf("auth failures on honest ring traffic: %d", snap.Total.Crypto.AuthFailures)
	}
}

// TestShmRingZeroCopyLegacyEngine is the same pin for the paper-faithful
// Encrypt path (RealEngine, no AAD): SealInto/OpenInPlace must engage for it
// too.
func TestShmRingZeroCopyLegacyEngine(t *testing.T) {
	codec, err := encmpi.NewCodec("aesstd", bytes.Repeat([]byte{7}, 32))
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 16
	reg := encmpi.NewRegistry(2)
	err = encmpi.RunShm(2, func(c *encmpi.Comm) {
		e := encmpi.Encrypt(c, codec, uint32(c.Rank()), encmpi.WithMetrics(reg))
		for i := 0; i < msgs; i++ {
			want := []byte(fmt.Sprintf("legacy record %d", i))
			if c.Rank() == 0 {
				if err := e.Send(1, i, encmpi.Bytes(want)); err != nil {
					t.Errorf("send %d: %v", i, err)
				}
			} else {
				got, _, err := e.Recv(0, i)
				if err != nil {
					t.Errorf("recv %d: %v", i, err)
					return
				}
				if !bytes.Equal(got.Data, want) {
					t.Errorf("message %d: got %q", i, got.Data)
				}
			}
		}
	}, encmpi.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Ranks[0].Crypto.SealsInPlace; got != msgs {
		t.Errorf("rank 0 sealed %d records in place, want %d", got, msgs)
	}
	if got := snap.Ranks[1].Crypto.OpensInPlace; got != msgs {
		t.Errorf("rank 1 opened %d records in place, want %d", got, msgs)
	}
}

// TestShmRingDisabledOption pins WithShmRing(-1, 0): the rings are off, no
// seal lands in place, and traffic is byte-identical to the ring path.
func TestShmRingDisabledOption(t *testing.T) {
	key := sessionKey(0x4D)
	reg := encmpi.NewRegistry(2)
	err := encmpi.RunShm(2, func(c *encmpi.Comm) {
		sess, err := encmpi.NewSession(key)
		if err != nil {
			t.Error(err)
			return
		}
		e, err := sess.Attach(c)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			if err := e.Send(1, 0, encmpi.Bytes([]byte("pooled"))); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			got, _, err := e.Recv(0, 0)
			if err != nil || !bytes.Equal(got.Data, []byte("pooled")) {
				t.Errorf("recv: %v %q", err, got.Data)
			}
		}
	}, encmpi.WithMetrics(reg), encmpi.WithShmRing(-1, 0))
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if snap.Ring.Rings != 0 || snap.Ring.Acquired != 0 {
		t.Errorf("disabled rings still engaged: %+v", snap.Ring)
	}
	if snap.Total.Crypto.SealsInPlace != 0 || snap.Total.Crypto.OpensInPlace != 0 {
		t.Errorf("in-place crypto without rings: %+v", snap.Total.Crypto)
	}
}

// TestShmRingRendezvousFallback sends a payload far above the slot size: it
// must travel by the existing chunked rendezvous, untouched by the ring, and
// still verify.
func TestShmRingRendezvousFallback(t *testing.T) {
	key := sessionKey(0x5E)
	big := bytes.Repeat([]byte{0x6F}, 384<<10)
	reg := encmpi.NewRegistry(2)
	err := encmpi.RunShm(2, func(c *encmpi.Comm) {
		sess, err := encmpi.NewSession(key)
		if err != nil {
			t.Error(err)
			return
		}
		e, err := sess.Attach(c)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			if err := e.Send(1, 0, encmpi.Bytes(big)); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			got, _, err := e.Recv(0, 0)
			if err != nil {
				t.Errorf("recv: %v", err)
			} else if !bytes.Equal(got.Data, big) {
				t.Errorf("rendezvous payload corrupted (%d bytes)", got.Len())
			}
		}
	}, encmpi.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if snap := reg.Snapshot(); snap.Total.Crypto.AuthFailures != 0 {
		t.Errorf("auth failures on rendezvous traffic: %d", snap.Total.Crypto.AuthFailures)
	}
}
