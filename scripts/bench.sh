#!/bin/sh
# Machine-readable performance snapshot: runs cmd/benchjson and writes the
# committed BENCH_PR8.json (seal/open ns/op, MB/s, allocs/op per engine and
# size; 16x4KiB concurrent aggregate through the shared crypto pool vs the
# per-call baseline; shm ping-pong; simulated collective latencies incl.
# BcastPipelined vs Bcast; multi-pair TCP bandwidth with the batched wire
# engine vs the SyncWrites baseline; chunked-rendezvous p2p overlap vs the
# serial seal-whole-message path on TCP and the simulated IB40G cluster;
# session_overhead pricing the context-AAD binding vs the legacy engine;
# shm_ring comparing zero-copy slot-ring delivery vs seed inline copies).
#
# QUICK=1 bounds the measurement loops for CI smoke use; OUT overrides the
# output path. `make bench` is the entry point.
set -eu
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_PR8.json}"
FLAGS=""
[ "${QUICK:-0}" = "1" ] && FLAGS="-quick"

go run ./cmd/benchjson $FLAGS -o "$OUT"
grep -q '"schema": "encmpi-bench/1"' "$OUT" || {
	echo "bench.sh: $OUT is missing the snapshot schema marker" >&2
	exit 1
}
