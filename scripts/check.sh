#!/bin/sh
# Extended tier-1 gate: static checks, the full test suite under the race
# detector, and a short fuzz smoke of every wire-decoder target. CI and
# pre-commit both run this; `make check` is the entry point.
#
# FUZZTIME overrides the per-target fuzz budget (default 10s).
set -eu
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

fuzz() {
	pkg="$1"
	target="$2"
	echo "== fuzz $target ($pkg, $FUZZTIME)"
	go test "$pkg" -run '^$' -fuzz "^${target}\$" -fuzztime "$FUZZTIME"
}

echo "== stats smoke (encrypted ping-pong byte accounting)"
# A 2-rank encrypted ping-pong with -stats must report per-rank crypto
# accounting whose merged totals satisfy wire == plain + msgs*28 exactly;
# the command exits non-zero if the invariant fails, and we also assert
# the confirmation line so a silently missing check cannot pass.
out="$(go run ./cmd/pingpong -small -lib boringssl -iters 5 -stats)"
echo "$out" | grep -q "byte accounting OK" || {
	echo "stats smoke failed: no byte-accounting confirmation in output:"
	echo "$out"
	exit 1
}

echo "== alloc-regression smoke (pooled hot path must beat unpooled baseline)"
# The AllocsPerRun tests pin the bufpool win (pooled Seal/Open at ≤ half the
# unpooled allocations); the single-shot benchmarks exercise the NoPool A/B
# paths end to end, including the TCP rendezvous round trip.
go test ./internal/encmpi -run 'AllocRegression' -count=1
go test ./internal/encmpi ./internal/transport/tcp -run '^$' -bench 'Alloc' -benchtime 1x

fuzz ./internal/aead FuzzDecryptMessage
fuzz ./internal/aead/gcm FuzzOpenRejectsGarbage
fuzz ./internal/encmpi FuzzParallelOpen
fuzz ./internal/encmpi FuzzPlainLen
fuzz ./internal/encmpi FuzzPipelineHeader
fuzz ./internal/transport/tcp FuzzFrameHeader

echo "== all checks passed"
