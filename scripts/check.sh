#!/bin/sh
# Extended tier-1 gate: static checks, the full test suite under the race
# detector, and a short fuzz smoke of every wire-decoder target. CI and
# pre-commit both run this; `make check` is the entry point.
#
# FUZZTIME overrides the per-target fuzz budget (default 10s).
set -eu
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

fuzz() {
	pkg="$1"
	target="$2"
	echo "== fuzz $target ($pkg, $FUZZTIME)"
	go test "$pkg" -run '^$' -fuzz "^${target}\$" -fuzztime "$FUZZTIME"
}

fuzz ./internal/aead FuzzDecryptMessage
fuzz ./internal/aead/gcm FuzzOpenRejectsGarbage
fuzz ./internal/encmpi FuzzParallelOpen
fuzz ./internal/encmpi FuzzPlainLen
fuzz ./internal/encmpi FuzzPipelineHeader

echo "== all checks passed"
