#!/bin/sh
# Extended tier-1 gate: static checks, the full test suite under the race
# detector, and a short fuzz smoke of every wire-decoder target. CI and
# pre-commit both run this; `make check` is the entry point.
#
# FUZZTIME overrides the per-target fuzz budget (default 10s).
set -eu
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

fuzz() {
	pkg="$1"
	target="$2"
	echo "== fuzz $target ($pkg, $FUZZTIME)"
	go test "$pkg" -run '^$' -fuzz "^${target}\$" -fuzztime "$FUZZTIME"
}

echo "== stats smoke (encrypted ping-pong byte accounting)"
# A 2-rank encrypted ping-pong with -stats must report per-rank crypto
# accounting whose merged totals satisfy wire == plain + msgs*28 exactly;
# the command exits non-zero if the invariant fails, and we also assert
# the confirmation line so a silently missing check cannot pass.
out="$(go run ./cmd/pingpong -small -lib boringssl -iters 5 -stats)"
echo "$out" | grep -q "byte accounting OK" || {
	echo "stats smoke failed: no byte-accounting confirmation in output:"
	echo "$out"
	exit 1
}

echo "== alloc-regression smoke (pooled hot path must beat unpooled baseline)"
# The AllocsPerRun tests pin the bufpool win (pooled Seal/Open at ≤ half the
# unpooled allocations) and the transport hot paths (256 KiB TCP rendezvous
# round trip at ~0 allocs/op, down from the seed's 16); the single-shot
# benchmarks exercise the NoPool A/B paths end to end.
go test ./internal/encmpi ./internal/transport/tcp -run 'AllocRegression' -count=1
go test ./internal/encmpi ./internal/transport/tcp -run '^$' -bench 'Alloc' -benchtime 1x

echo "== pipeline-overlap smoke (chunked rendezvous must overlap crypto with the wire)"
# TestPipelineOverlapSmoke pins the tentpole property over real TCP: a 1 MiB
# encrypted transfer must record nonzero seal-while-sending overlap in the
# metrics (chunk k+1 sealed while chunk k drains), and every chunk must be
# both sent and opened through the pipeline.
go test ./internal/encmpi -run 'PipelineOverlapSmoke' -count=1

echo "== session smoke (two sessions multiplexed over shm and TCP; splice rejected)"
# TestSessionSmoke runs two independent sessions concurrently over one job's
# shared transport — both the shm ring and TCP connections (lane
# demultiplexing must keep them apart on either); TestSessionSpliceRejected
# proves a ciphertext spliced across sessions fails AEAD authentication and
# is attributed as an auth failure, not a stray (DESIGN.md §13).
go test . -run 'TestSessionSmoke|TestSessionSpliceRejected' -count=1

echo "== shm-ring smoke (zero-copy seal-into-slot engages and retires cleanly)"
# TestShmRing* pins the zero-copy shm path end to end: session and legacy
# engines seal directly into ring slots (SealsInPlace) and the receiver
# opens them in place (OpensInPlace), every acquired slot is retired,
# WithShmRing(-1, 0) really disables the rings, and oversize payloads fall
# back to chunked rendezvous (DESIGN.md §14). The transport-level eager
# alloc gate proves the ring round trip allocates nothing.
go test . -run 'TestShmRing' -count=1
go test ./internal/transport/shm -run 'TestEagerAllocRegression|TestStrayNotChargedToReceiver|TestLaneDemultiplex' -count=1

echo "== hierarchical smoke (p=64 simnet, hierarchical == flat bit-for-bit)"
# TestHierFlatEquivalenceSim runs every collective both hierarchically and
# flat in one 64-rank simulated job (8 nodes, topology from the cluster
# spec, session engine) and requires identical bytes — the two-level
# algorithms must be invisible to correctness (DESIGN.md §15).
go test . -run 'TestHierFlatEquivalenceSim' -count=1

echo "== persistent-collective gate (steady-state Start/Wait does zero setup)"
# TestPersistentPlanAllocs pins a persistent plan cycle at 0 allocs/op via
# AllocsPerRun; TestPersistentSteadyState pins Session.Derivations flat and
# the topology cache untouched across cycles — init-once/start-many means
# no Split, no negotiation, no key/nonce derivation after the first cycle.
go test . -run 'TestPersistentPlanAllocs|TestPersistentSteadyState' -count=1

echo "== hear smoke (additive-noise engine: allocs, counters, integrity caveat)"
# TestHearPlanZeroAllocs pins the persistent-plan hear Allreduce at 0
# allocs/op steady-state (pooled keystream tasks + buffer pool);
# TestHearKeystreamCounters asserts the keystream-derivation accounting —
# hear ops charge HearEncrypts/HearDecrypts/HearKeystreamElems exactly
# (2·elems per op) while the AEAD seal/open counters stay untouched;
# TestHearHostileBytesNoPanic pins the documented failure mode — hostile
# bytes decode to garbage, never a panic or a false accept signal
# (DESIGN.md §16).
go test . -run 'TestHearPlanZeroAllocs|TestHearKeystreamCounters|TestHearHostileBytesNoPanic' -count=1

echo "== hier slot-ring smoke (intra-node legs ride the PR 8 rings)"
go test . -run 'TestHierIntraNodeSlotRings' -count=1

echo "== bench smoke (machine-readable snapshot, quick mode)"
# The full snapshot is regenerated by `make bench`; here we only prove the
# harness runs end to end and emits a parseable report.
QUICK=1 OUT=/tmp/encmpi_bench_smoke.json ./scripts/bench.sh

echo "== wire-batching smoke (A/B ran and the engine actually coalesced)"
# The multi-pair TCP suite runs both the batched wire engine and the
# SyncWrites baseline; the batched runs must show real coalescing — a mean
# batch of more than one frame per flush — or the engine degenerated into
# one-write-per-message and the A/B comparison is meaningless.
awk -F': ' '
	/"batched_mean_batch_frames"/ { v = $2 + 0; if (v > best) best = v }
	/"sync_mb_s"/                 { sync_seen = 1 }
	END {
		if (!sync_seen) { print "wire-batching smoke: no SyncWrites baseline in report"; exit 1 }
		if (best <= 1)  { print "wire-batching smoke: no coalescing observed (best mean batch " best " frames/flush)"; exit 1 }
		print "coalescing OK (best mean batch " best " frames/flush)"
	}
' /tmp/encmpi_bench_smoke.json

fuzz ./internal/aead FuzzDecryptMessage
fuzz ./internal/aead/gcm FuzzOpenRejectsGarbage
fuzz ./internal/encmpi FuzzParallelOpen
fuzz ./internal/encmpi FuzzPlainLen
fuzz ./internal/encmpi FuzzPipelineHeader
fuzz ./internal/transport/tcp FuzzFrameHeader
fuzz ./internal/session FuzzSessionAAD

echo "== all checks passed"
