// Benchmark harness: one testing.B benchmark per table and figure of the
// paper (running a tractable configuration of the same experiment code the
// full reproduction uses — `go run ./cmd/reproduce` regenerates the
// full-scale tables), plus microbenchmarks of the real AEAD tiers and the
// ablations listed in DESIGN.md §5.
package encmpi

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"encmpi/internal/aead"
	"encmpi/internal/aead/aessoft"
	"encmpi/internal/aead/codecs"
	gcmpkg "encmpi/internal/aead/gcm"
	"encmpi/internal/costmodel"
	enc "encmpi/internal/encmpi"
	"encmpi/internal/nas"
	"encmpi/internal/osu"
	"encmpi/internal/simnet"
)

// ---- Real AEAD tiers (the measured side of Fig 2 / Fig 9) ----------------

// BenchmarkCodecs measures Seal+Open throughput of the three real AES-GCM
// tiers across message sizes.
func BenchmarkCodecs(b *testing.B) {
	key := bytes.Repeat([]byte{0x42}, 32)
	for _, name := range codecs.GCMNames() {
		codec, err := codecs.New(name, key)
		if err != nil {
			b.Fatal(err)
		}
		for _, size := range []int{256, 16 << 10, 1 << 20} {
			b.Run(fmt.Sprintf("%s/%d", name, size), func(b *testing.B) {
				pt := make([]byte, size)
				nonce := make([]byte, aead.NonceSize)
				ct := codec.Seal(nil, nonce, pt)
				out := make([]byte, 0, size)
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ct = codec.Seal(ct[:0], nonce, pt)
					if _, err := codec.Open(out[:0], nonce, ct); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSealOnly isolates encryption (half of the Fig 2 metric).
func BenchmarkSealOnly(b *testing.B) {
	key := bytes.Repeat([]byte{1}, 32)
	for _, name := range codecs.GCMNames() {
		codec, _ := codecs.New(name, key)
		b.Run(name, func(b *testing.B) {
			pt := make([]byte, 64<<10)
			nonce := make([]byte, aead.NonceSize)
			var ct []byte
			b.SetBytes(int64(len(pt)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ct = codec.Seal(ct[:0], nonce, pt)
			}
		})
	}
}

// ---- Simulation-backed experiment benches ---------------------------------

// libModel builds the model-engine factory for a paper library.
func libModel(b *testing.B, lib string, v costmodel.Variant) osu.EngineFactory {
	b.Helper()
	p, err := costmodel.Lookup(lib, v, 256)
	if err != nil {
		b.Fatal(err)
	}
	return func(int) Engine { return enc.NewModelEngine(p) }
}

// benchPingPong runs the ping-pong experiment and reports MB/s.
func benchPingPong(b *testing.B, cfg simnet.Config, mk osu.EngineFactory, size int) {
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := osu.PingPong(cfg, mk, size, 20)
		if err != nil {
			b.Fatal(err)
		}
		last = res.Throughput
	}
	b.ReportMetric(last, "MB/s")
}

// BenchmarkFig2EncDec exercises the curve lookup path of Fig 2.
func BenchmarkFig2EncDec(b *testing.B) {
	p, _ := costmodel.Lookup("boringssl", costmodel.GCC485, 256)
	for i := 0; i < b.N; i++ {
		for _, s := range []int{256, 16 << 10, 2 << 20} {
			_ = p.Curve.EncDecTime(s)
		}
	}
}

// BenchmarkFig9EncDec exercises the MVAPICH-variant curves of Fig 9.
func BenchmarkFig9EncDec(b *testing.B) {
	p, _ := costmodel.Lookup("cryptopp", costmodel.MVAPICH, 256)
	for i := 0; i < b.N; i++ {
		for _, s := range []int{256, 16 << 10, 2 << 20} {
			_ = p.Curve.EncDecTime(s)
		}
	}
}

func BenchmarkTable1PingPongSmallEth(b *testing.B) {
	benchPingPong(b, simnet.Eth10G(), libModel(b, "boringssl", costmodel.GCC485), 256)
}

func BenchmarkFig3PingPongLargeEth(b *testing.B) {
	benchPingPong(b, simnet.Eth10G(), libModel(b, "boringssl", costmodel.GCC485), 2<<20)
}

func BenchmarkTable5PingPongSmallIB(b *testing.B) {
	benchPingPong(b, simnet.IB40G(), libModel(b, "boringssl", costmodel.MVAPICH), 256)
}

func BenchmarkFig10PingPongLargeIB(b *testing.B) {
	benchPingPong(b, simnet.IB40G(), libModel(b, "boringssl", costmodel.MVAPICH), 2<<20)
}

// benchMultiPair runs the multi-pair experiment at 4 pairs.
func benchMultiPair(b *testing.B, cfg simnet.Config, v costmodel.Variant, size int) {
	mk := libModel(b, "boringssl", v)
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := osu.MultiPair(cfg, mk, size, 4, 2)
		if err != nil {
			b.Fatal(err)
		}
		last = res.Throughput
	}
	b.ReportMetric(last, "MB/s")
}

func BenchmarkFig4MultiPair1BEth(b *testing.B) {
	benchMultiPair(b, simnet.Eth10G(), costmodel.GCC485, 1)
}

func BenchmarkFig5MultiPair16KBEth(b *testing.B) {
	benchMultiPair(b, simnet.Eth10G(), costmodel.GCC485, 16<<10)
}

func BenchmarkFig6MultiPair2MBEth(b *testing.B) {
	benchMultiPair(b, simnet.Eth10G(), costmodel.GCC485, 2<<20)
}

func BenchmarkFig11MultiPair1BIB(b *testing.B) {
	benchMultiPair(b, simnet.IB40G(), costmodel.MVAPICH, 1)
}

func BenchmarkFig12MultiPair16KBIB(b *testing.B) {
	benchMultiPair(b, simnet.IB40G(), costmodel.MVAPICH, 16<<10)
}

func BenchmarkFig13MultiPair2MBIB(b *testing.B) {
	benchMultiPair(b, simnet.IB40G(), costmodel.MVAPICH, 2<<20)
}

// benchCollective times one collective invocation at the paper's 64/8 shape.
func benchCollective(b *testing.B, cfg simnet.Config, v costmodel.Variant, op osu.CollectiveOp, size int) {
	mk := libModel(b, "boringssl", v)
	var last time.Duration
	for i := 0; i < b.N; i++ {
		res, err := osu.Collective(cfg, mk, op, 64, 8, size, 2)
		if err != nil {
			b.Fatal(err)
		}
		last = res.MeanLat
	}
	b.ReportMetric(last.Seconds()*1e6, "µs/op-mean")
}

func BenchmarkTable2BcastEth(b *testing.B) {
	benchCollective(b, simnet.Eth10G(), costmodel.GCC485, osu.OpBcast, 16<<10)
}

func BenchmarkTable3AlltoallEth(b *testing.B) {
	benchCollective(b, simnet.Eth10G(), costmodel.GCC485, osu.OpAlltoall, 16<<10)
}

func BenchmarkTable6BcastIB(b *testing.B) {
	benchCollective(b, simnet.IB40G(), costmodel.MVAPICH, osu.OpBcast, 16<<10)
}

func BenchmarkTable7AlltoallIB(b *testing.B) {
	benchCollective(b, simnet.IB40G(), costmodel.MVAPICH, osu.OpAlltoall, 16<<10)
}

// benchNAS runs one NAS kernel at class A / 16 ranks (the full class C / 64
// tables come from cmd/reproduce or cmd/nasbench).
func benchNAS(b *testing.B, cfg simnet.Config, v costmodel.Variant, kernel string) {
	mk := libModel(b, "boringssl", v)
	var last time.Duration
	for i := 0; i < b.N; i++ {
		res, err := nas.Run(kernel, 'A', 16, 4, cfg, func(r int) Engine { return mk(r) }, 50*time.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		last = res.Elapsed
	}
	b.ReportMetric(last.Seconds(), "sim-s")
}

func BenchmarkTable4NASEth(b *testing.B) {
	for _, k := range nas.Kernels() {
		b.Run(k, func(b *testing.B) { benchNAS(b, simnet.Eth10G(), costmodel.GCC485, k) })
	}
}

func BenchmarkTable8NASIB(b *testing.B) {
	for _, k := range nas.Kernels() {
		b.Run(k, func(b *testing.B) { benchNAS(b, simnet.IB40G(), costmodel.MVAPICH, k) })
	}
}

// ---- Ablations (DESIGN.md §5 and X2-X4) -----------------------------------

// BenchmarkAblationGCMvsCCM verifies the paper's §III-A claim that GCM is
// the faster of the two integrity-providing modes, using identical T-table
// AES underneath.
func BenchmarkAblationGCMvsCCM(b *testing.B) {
	key := bytes.Repeat([]byte{3}, 32)
	for _, name := range []string{"aessoft", "ccmsoft"} {
		codec, err := codecs.New(name, key)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			pt := make([]byte, 64<<10)
			nonce := make([]byte, aead.NonceSize)
			var ct []byte
			b.SetBytes(int64(len(pt)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ct = codec.Seal(ct[:0], nonce, pt)
			}
		})
	}
}

// BenchmarkAblationKeySize compares AES-GCM-128 and -256 on the real fast
// tier (the paper ran both and reported identical trends).
func BenchmarkAblationKeySize(b *testing.B) {
	for _, bits := range []int{128, 256} {
		key := bytes.Repeat([]byte{5}, bits/8)
		codec, err := codecs.New("aesstd", key)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("aes%d", bits), func(b *testing.B) {
			pt := make([]byte, 256<<10)
			nonce := make([]byte, aead.NonceSize)
			var ct []byte
			b.SetBytes(int64(len(pt)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ct = codec.Seal(ct[:0], nonce, pt)
			}
		})
	}
}

// BenchmarkAblationParallelCrypto quantifies the paper's §V-C suggestion:
// multi-threaded encryption on the 2MB InfiniBand ping-pong.
func BenchmarkAblationParallelCrypto(b *testing.B) {
	p, err := costmodel.Lookup("boringssl", costmodel.MVAPICH, 256)
	if err != nil {
		b.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4, 8} {
		threads := threads
		b.Run(fmt.Sprintf("threads%d", threads), func(b *testing.B) {
			mk := func(int) Engine {
				e := enc.NewModelEngine(p)
				e.Threads = threads
				return e
			}
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := osu.PingPong(simnet.IB40G(), mk, 2<<20, 10)
				if err != nil {
					b.Fatal(err)
				}
				last = res.Throughput
			}
			b.ReportMetric(last, "MB/s")
		})
	}
}

// BenchmarkNonceSource compares Algorithm 1's per-message RAND_bytes nonce
// against the counter-nonce ablation.
func BenchmarkNonceSource(b *testing.B) {
	b.Run("random", func(b *testing.B) {
		var src aead.RandomNonce
		n := make([]byte, aead.NonceSize)
		for i := 0; i < b.N; i++ {
			if err := src.Next(n); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("counter", func(b *testing.B) {
		src := aead.NewCounterNonce(1)
		n := make([]byte, aead.NonceSize)
		for i := 0; i < b.N; i++ {
			if err := src.Next(n); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationNonblockingOverlap measures the value of the paper's
// decrypt-inside-Wait design: a receiver that overlaps computation with the
// in-flight encrypted message versus one that blocks immediately.
func BenchmarkAblationNonblockingOverlap(b *testing.B) {
	p, err := costmodel.Lookup("boringssl", costmodel.GCC485, 256)
	if err != nil {
		b.Fatal(err)
	}
	const size = 1 << 20
	const compute = 800 * time.Microsecond
	run := func(overlap bool) time.Duration {
		spec := PaperTestbed(2, 2)
		var elapsed time.Duration
		_, err := RunSim(spec, Eth10G(), func(c *Comm) {
			e := EncryptWith(c, enc.NewModelEngine(p))
			switch c.Rank() {
			case 0:
				e.Send(1, 0, Synthetic(size))
			case 1:
				start := c.Proc().Now()
				if overlap {
					req := e.Irecv(0, 0)
					c.Proc().Advance(compute)
					if _, _, err := e.Wait(req); err != nil {
						panic(err)
					}
				} else {
					if _, _, err := e.Recv(0, 0); err != nil {
						panic(err)
					}
					c.Proc().Advance(compute)
				}
				elapsed = c.Proc().Now() - start
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		return elapsed
	}
	var blocking, overlapped time.Duration
	for i := 0; i < b.N; i++ {
		blocking = run(false)
		overlapped = run(true)
	}
	b.ReportMetric(blocking.Seconds()*1e6, "blocking-µs")
	b.ReportMetric(overlapped.Seconds()*1e6, "overlapped-µs")
}

// BenchmarkSimulatorEventRate measures raw discrete-event throughput — the
// capacity number that bounds how large a cluster the simulator can handle.
func BenchmarkSimulatorEventRate(b *testing.B) {
	spec := PaperTestbed(16, 4)
	var events uint64
	var wall time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		res, err := RunSim(spec, IB40G(), func(c *Comm) {
			for it := 0; it < 50; it++ {
				blocks := make([]Buffer, c.Size())
				for d := range blocks {
					blocks[d] = Synthetic(4096)
				}
				c.Alltoall(blocks)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
		wall = time.Since(start)
	}
	b.ReportMetric(float64(events)/wall.Seconds(), "events/s")
}

// BenchmarkGhashStrategies compares the three GHASH implementations on a
// fixed subkey — the internal knob behind the aessoft/aessoft8 tiers.
func BenchmarkGhashStrategies(b *testing.B) {
	h := gcmpkg.Element{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210}
	data := make([]byte, 16<<10)
	strategies := []struct {
		name string
		mk   gcmpkg.GhashFactory
	}{
		{"naive-bitwise", gcmpkg.NewNaiveGhash},
		{"table-4bit", aessoft.NewTableGhash},
		{"table-8bit", aessoft.NewTable8Ghash},
	}
	for _, s := range strategies {
		b.Run(s.name, func(b *testing.B) {
			g := s.mk(h)
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				g.Reset()
				g.Update(data)
				g.Lengths(0, uint64(len(data)))
			}
		})
	}
}

// BenchmarkAblationPipelined quantifies chunked encrypt/transfer overlap
// (internal/encmpi/pipeline.go) against the monolithic Encrypted_Send for a
// 4MB message with CryptoPP-class crypto on InfiniBand.
func BenchmarkAblationPipelined(b *testing.B) {
	p, err := costmodel.Lookup("cryptopp", costmodel.MVAPICH, 256)
	if err != nil {
		b.Fatal(err)
	}
	const size = 4 << 20
	run := func(pipelined bool) time.Duration {
		spec := PaperTestbed(2, 2)
		var elapsed time.Duration
		_, err := RunSim(spec, IB40G(), func(c *Comm) {
			e := EncryptWith(c, enc.NewModelEngine(p))
			switch c.Rank() {
			case 0:
				start := c.Proc().Now()
				if pipelined {
					if err := e.SendPipelined(1, 0, Synthetic(size), 256<<10); err != nil {
						panic(err)
					}
				} else {
					e.Send(1, 0, Synthetic(size))
				}
				if _, _, err := e.Recv(1, 9); err != nil {
					panic(err)
				}
				elapsed = c.Proc().Now() - start
			case 1:
				if pipelined {
					if _, err := e.RecvPipelined(0, 0, 256<<10); err != nil {
						panic(err)
					}
				} else {
					if _, _, err := e.Recv(0, 0); err != nil {
						panic(err)
					}
				}
				e.Send(0, 9, Synthetic(1))
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		return elapsed
	}
	var mono, pipe time.Duration
	for i := 0; i < b.N; i++ {
		mono = run(false)
		pipe = run(true)
	}
	b.ReportMetric(mono.Seconds()*1e6, "monolithic-µs")
	b.ReportMetric(pipe.Seconds()*1e6, "pipelined-µs")
}

// BenchmarkAblationBcastPipelined quantifies the segmented pipelined
// broadcast against the monolithic encrypted Bcast at 1 MiB on the
// simulated cluster: sealing chunk k+1 and relaying chunk k overlap down
// the binomial tree, so slow crypto no longer serializes with every hop.
func BenchmarkAblationBcastPipelined(b *testing.B) {
	p, err := costmodel.Lookup("cryptopp", costmodel.MVAPICH, 256)
	if err != nil {
		b.Fatal(err)
	}
	const size = 1 << 20
	mk := func(int) Engine { return enc.NewModelEngine(p) }
	var plain, piped time.Duration
	for i := 0; i < b.N; i++ {
		for _, op := range []osu.CollectiveOp{osu.OpBcast, osu.OpBcastPipelined} {
			res, err := osu.Collective(simnet.IB40G(), mk, op, 8, 2, size, 2)
			if err != nil {
				b.Fatal(err)
			}
			if op == osu.OpBcast {
				plain = res.MeanLat
			} else {
				piped = res.MeanLat
			}
		}
	}
	b.ReportMetric(plain.Seconds()*1e6, "bcast-µs")
	b.ReportMetric(piped.Seconds()*1e6, "bcastpipe-µs")
}

// BenchmarkRealParallelSeal measures actual multi-core AES-GCM sealing via
// the ParallelEngine — the paper's §V-C proposal with real cryptography
// rather than a model.
func BenchmarkRealParallelSeal(b *testing.B) {
	key := bytes.Repeat([]byte{6}, 32)
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			codec, err := codecs.New("aessoft", key) // CPU-bound tier shows scaling
			if err != nil {
				b.Fatal(err)
			}
			eng := enc.NewParallelEngine(codec, aead.NewCounterNonce(1), workers)
			pt := Bytes(make([]byte, 4<<20))
			b.SetBytes(4 << 20)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Seal(nil, pt)
			}
		})
	}
}

// BenchmarkAblationEagerThreshold sweeps the rendezvous switch point
// (DESIGN.md §5.2): where the +28-byte expansion and protocol copies land
// depends on it.
func BenchmarkAblationEagerThreshold(b *testing.B) {
	p, err := costmodel.Lookup("boringssl", costmodel.GCC485, 256)
	if err != nil {
		b.Fatal(err)
	}
	for _, threshold := range []int{16 << 10, 64 << 10, 256 << 10} {
		threshold := threshold
		b.Run(fmt.Sprintf("eager%dK", threshold>>10), func(b *testing.B) {
			cfg := simnet.Eth10G()
			cfg.EagerThreshold = threshold
			mk := func(int) Engine { return enc.NewModelEngine(p) }
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := osu.PingPong(cfg, mk, 128<<10, 10)
				if err != nil {
					b.Fatal(err)
				}
				last = res.Throughput
			}
			b.ReportMetric(last, "MB/s")
		})
	}
}
