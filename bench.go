package encmpi

import (
	"time"

	"encmpi/internal/osu"
	"encmpi/internal/report"
	"encmpi/internal/stats"
)

// OSU micro-benchmark results.
type (
	// PingPongResult reports one ping-pong configuration.
	PingPongResult = osu.PingPongResult
	// MultiPairResult reports the aggregate Multiple-Pair bandwidth.
	MultiPairResult = osu.MultiPairResult
	// CollectiveResult reports a collective's mean per-invocation latency.
	CollectiveResult = osu.CollectiveResult
	// CollectiveOp names a collective under test.
	CollectiveOp = osu.CollectiveOp
)

// The collectives the benchmarks time.
const (
	OpBcast     CollectiveOp = osu.OpBcast
	OpAlltoall  CollectiveOp = osu.OpAlltoall
	OpAllgather CollectiveOp = osu.OpAllgather
	// OpBcastPipelined is the segmented broadcast that overlaps each
	// chunk's crypto with the previous chunk's tree descent.
	OpBcastPipelined CollectiveOp = osu.OpBcastPipelined
	// OpAllreduce is the flat allreduce baseline. Reductions combine
	// plaintext at every hop (the paper's routine list excludes them), so
	// this rides the unencrypted path.
	OpAllreduce CollectiveOp = osu.OpAllreduce
	// The topology-aware two-level collectives (DESIGN.md §15): intra-node
	// aggregation over shared memory first, one sealed flow per node leader
	// across the network.
	OpHierBcast     CollectiveOp = osu.OpHierBcast
	OpHierAllgather CollectiveOp = osu.OpHierAllgather
	OpHierAllreduce CollectiveOp = osu.OpHierAllreduce
	OpHierAlltoall  CollectiveOp = osu.OpHierAlltoall
	// OpHearAllreduce is the additive-noise allreduce (DESIGN.md §16):
	// ranks mask their contribution once and reduce ciphertext directly, so
	// no per-hop seal/open appears on the critical path.
	OpHearAllreduce CollectiveOp = osu.OpHearAllreduce
	// OpAllreduceSealed is the reduce-then-seal AEAD comparator: plaintext
	// arithmetic with every hop's payload sealed and opened, the way an
	// AEAD-protected reduction must move data.
	OpAllreduceSealed CollectiveOp = osu.OpAllreduceSealed
	// OpHearPlanAllreduce is the additive-noise engine's production path:
	// a persistent AllreduceInit plan, hierarchical on multi-node shapes,
	// with the key ceremony paid once at init.
	OpHearPlanAllreduce CollectiveOp = osu.OpHearPlanAllreduce
)

// MultiPairWindow is the OSU window size the paper cites (64 non-blocking
// sends per iteration).
const MultiPairWindow = osu.MultiPairWindow

// PingPong runs the blocking ping-pong between two ranks on different
// simulated nodes. WithMetrics threads a registry through the run; other
// options are ignored.
func PingPong(cfg NetConfig, mk EngineFactory, size, iters int, opts ...Option) (PingPongResult, error) {
	return osu.PingPongObserved(cfg, mk, size, iters, buildConfig(opts).metrics)
}

// MultiPair runs the OSU Multiple-Pair bandwidth test: `pairs` senders on
// one node stream to `pairs` receivers on another. Options as for PingPong.
func MultiPair(cfg NetConfig, mk EngineFactory, size, pairs, iters int, opts ...Option) (MultiPairResult, error) {
	return osu.MultiPairObserved(cfg, mk, size, pairs, iters, buildConfig(opts).metrics)
}

// Collective times `iters` invocations of a collective on the given cluster
// shape. Options as for PingPong.
func Collective(cfg NetConfig, mk EngineFactory, op CollectiveOp, ranks, nodes, size, iters int, opts ...Option) (CollectiveResult, error) {
	return osu.CollectiveObserved(cfg, mk, op, ranks, nodes, size, iters, buildConfig(opts).metrics)
}

// Benchmark methodology (paper §V): adaptive repetition and
// ratio-of-totals overhead summaries.
type (
	// AdaptiveConfig bounds an adaptive measurement run.
	AdaptiveConfig = stats.AdaptiveConfig
	// Sample summarizes a converged measurement.
	Sample = stats.Sample
)

// ErrNoConvergence reports that an adaptive run exhausted its budget.
var ErrNoConvergence = stats.ErrNoConvergence

// CommDefaults returns the paper's adaptive criteria for communication
// benchmarks.
func CommDefaults() AdaptiveConfig { return stats.CommDefaults() }

// EncDefaults returns the paper's adaptive criteria for encryption
// micro-benchmarks.
func EncDefaults() AdaptiveConfig { return stats.EncDefaults() }

// AdaptiveRun repeats measure() until the paper's convergence criterion
// holds.
func AdaptiveRun(cfg AdaptiveConfig, measure func() float64) (Sample, error) {
	return stats.AdaptiveRun(cfg, measure)
}

// Summarize computes a Sample from already-collected values.
func Summarize(values []float64) Sample { return stats.Summarize(values) }

// OverheadFromTotals computes overhead as a ratio of totals (the
// Fleming–Wallace-correct aggregation).
func OverheadFromTotals(baseline, measured []float64) (float64, error) {
	return stats.OverheadFromTotals(baseline, measured)
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(values []float64) (float64, error) { return stats.GeoMean(values) }

// Report rendering.
type (
	// Table is an aligned ASCII/CSV results table.
	Table = report.Table
)

// NewTable creates a results table with the given title and columns.
func NewTable(title string, columns ...string) *Table { return report.NewTable(title, columns...) }

// MBps formats a throughput value for a table cell.
func MBps(v float64) string { return report.MBps(v) }

// Micros formats a duration in microseconds for a table cell.
func Micros(d time.Duration) string { return report.Micros(d) }

// Seconds formats a duration in seconds for a table cell.
func Seconds(d time.Duration) string { return report.Seconds(d) }

// Pct formats a ratio as a percentage for a table cell.
func Pct(v float64) string { return report.Pct(v) }
