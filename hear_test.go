package encmpi_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"encmpi"
)

// hearTestKey is the shared AEAD key protecting the hear key ceremony.
var hearTestKey = bytes.Repeat([]byte{0x7c}, 32)

// hearSpec declares the additive-noise engine over a real AES-GCM inner
// engine (the ceremony and all non-reduction routines stay authenticated).
func hearSpec() encmpi.EngineSpec {
	return encmpi.EngineSpec{Kind: "hear", Codec: "aesstd", Key: hearTestKey}
}

// runHear executes body on every rank of a p-rank shm world wrapped with the
// hear engine.
func runHear(t *testing.T, p int, spec encmpi.EngineSpec,
	body func(e *encmpi.EncryptedComm), opts ...encmpi.Option) {
	t.Helper()
	mk, err := encmpi.EngineFactoryFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := encmpi.RunShm(p, func(c *encmpi.Comm) {
		body(encmpi.EncryptWith(c, mk(c.Rank())))
	}, opts...); err != nil {
		t.Fatal(err)
	}
}

// hearPair is one (datatype, op) combination under test.
type hearPair struct {
	name string
	dt   encmpi.Datatype
	op   encmpi.ReduceOp
}

var hearPairs = []hearPair{
	{"int32_sum", encmpi.Int32, encmpi.OpSum},
	{"uint32_sum", encmpi.Uint32, encmpi.OpSum},
	{"float32_sum", encmpi.Float32, encmpi.OpSum},
	{"float64_sum", encmpi.Float64, encmpi.OpSum},
	{"int32_prod", encmpi.Int32, encmpi.OpProd},
	{"uint32_prod", encmpi.Uint32, encmpi.OpProd},
}

// hearInput builds rank r's deterministic contribution for a pair. Products
// use small values so the wrapped expected product is easy to compute.
func hearInput(pr hearPair, r, n int) encmpi.Buffer {
	switch pr.dt {
	case encmpi.Int32:
		v := make([]int32, n)
		for k := range v {
			if pr.op == encmpi.OpProd {
				v[k] = int32(1 + (r+k)%3)
			} else {
				v[k] = int32(r*7 + k - 3)
			}
		}
		return encmpi.Int32Buffer(v)
	case encmpi.Uint32:
		v := make([]uint32, n)
		for k := range v {
			if pr.op == encmpi.OpProd {
				v[k] = uint32(1 + (r+k)%3)
			} else {
				v[k] = uint32(r*11 + k)
			}
		}
		return encmpi.Uint32Buffer(v)
	case encmpi.Float32:
		v := make([]float32, n)
		for k := range v {
			v[k] = float32(r)*0.5 + float32(k)*0.25
		}
		return encmpi.Float32Buffer(v)
	default: // Float64
		v := make([]float64, n)
		for k := range v {
			v[k] = float64(r)*1.5 + float64(k)*0.125
		}
		return encmpi.Float64Buffer(v)
	}
}

// checkHearResult verifies an aggregate over the rank range [0, ranks) (or a
// scan prefix, by passing the prefix width). Integer results must be
// bit-exact; floats carry the bounded mask-rounding tolerance.
func checkHearResult(t *testing.T, pr hearPair, got encmpi.Buffer, ranks, n int, where string) {
	t.Helper()
	switch pr.dt {
	case encmpi.Int32:
		g := encmpi.Int32s(got)
		for k := 0; k < n; k++ {
			var want int32
			if pr.op == encmpi.OpProd {
				want = 1
				for r := 0; r < ranks; r++ {
					want *= int32(1 + (r+k)%3)
				}
			} else {
				for r := 0; r < ranks; r++ {
					want += int32(r*7 + k - 3)
				}
			}
			if g[k] != want {
				t.Errorf("%s: %s[%d] = %d, want %d", where, pr.name, k, g[k], want)
				return
			}
		}
	case encmpi.Uint32:
		g := encmpi.Uint32s(got)
		for k := 0; k < n; k++ {
			var want uint32
			if pr.op == encmpi.OpProd {
				want = 1
				for r := 0; r < ranks; r++ {
					want *= uint32(1 + (r+k)%3)
				}
			} else {
				for r := 0; r < ranks; r++ {
					want += uint32(r*11 + k)
				}
			}
			if g[k] != want {
				t.Errorf("%s: %s[%d] = %d, want %d", where, pr.name, k, g[k], want)
				return
			}
		}
	case encmpi.Float32:
		g := encmpi.Float32s(got)
		tol := 0.05 * float64(ranks)
		for k := 0; k < n; k++ {
			var want float64
			for r := 0; r < ranks; r++ {
				want += float64(r)*0.5 + float64(k)*0.25
			}
			if math.Abs(float64(g[k])-want) > tol {
				t.Errorf("%s: %s[%d] = %v, want %v (±%v)", where, pr.name, k, g[k], want, tol)
				return
			}
		}
	default:
		g := encmpi.Float64s(got)
		tol := 1e-6 * float64(ranks)
		for k := 0; k < n; k++ {
			var want float64
			for r := 0; r < ranks; r++ {
				want += float64(r)*1.5 + float64(k)*0.125
			}
			if math.Abs(g[k]-want) > tol {
				t.Errorf("%s: %s[%d] = %v, want %v (±%v)", where, pr.name, k, g[k], want, tol)
				return
			}
		}
	}
}

// TestHearAllreduceRoundTrips covers every supported (datatype, op) pair at
// several world sizes (including non-powers-of-two, which take the
// reduce+bcast schedule) and non-uniform element counts.
func TestHearAllreduceRoundTrips(t *testing.T) {
	for _, p := range []int{2, 3, 8, 33} {
		p := p
		t.Run(string(rune('0'+p/10))+string(rune('0'+p%10))+"ranks", func(t *testing.T) {
			runHear(t, p, hearSpec(), func(e *encmpi.EncryptedComm) {
				r := e.Rank()
				for _, pr := range hearPairs {
					for _, n := range []int{1, 7, 257} {
						got, err := e.Allreduce(hearInput(pr, r, n), pr.dt, pr.op)
						if err != nil {
							t.Errorf("rank %d: %s n=%d: %v", r, pr.name, n, err)
							return
						}
						checkHearResult(t, pr, got, p, n, "allreduce")
					}
				}
			})
		})
	}
}

// TestHearReduceAndScan exercises the rooted reduce (only the root unmasks)
// and the prefix scan (rank r unmasks the [0, r+1) noise span).
func TestHearReduceAndScan(t *testing.T) {
	const p, n, root = 8, 65, 3
	runHear(t, p, hearSpec(), func(e *encmpi.EncryptedComm) {
		r := e.Rank()
		pr := hearPair{"int32_sum", encmpi.Int32, encmpi.OpSum}
		got, err := e.Reduce(root, hearInput(pr, r, n), pr.dt, pr.op)
		if err != nil {
			t.Errorf("rank %d: reduce: %v", r, err)
			return
		}
		if r == root {
			checkHearResult(t, pr, got, p, n, "reduce(root)")
		}

		for _, pr := range []hearPair{
			{"int32_sum", encmpi.Int32, encmpi.OpSum},
			{"float64_sum", encmpi.Float64, encmpi.OpSum},
		} {
			got, err := e.Scan(hearInput(pr, r, n), pr.dt, pr.op)
			if err != nil {
				t.Errorf("rank %d: scan %s: %v", r, pr.name, err)
				return
			}
			checkHearResult(t, pr, got, r+1, n, "scan")
		}
	})
}

// TestHearHierMatchesFlat checks that the hierarchical hear schedule (mask →
// intra-node ciphertext reduce → raw leader exchange → intra-node bcast →
// unmask) produces the same results as the flat path — bit-exact for
// integers — and that the persistent AllreducePlan rides the same schedule.
func TestHearHierMatchesFlat(t *testing.T) {
	const p, n = 8, 64
	runHear(t, p, hearSpec(), func(e *encmpi.EncryptedComm) {
		r := e.Rank()
		pr := hearPair{"int32_sum", encmpi.Int32, encmpi.OpSum}

		flat, err := e.Allreduce(hearInput(pr, r, n), pr.dt, pr.op)
		if err != nil {
			t.Errorf("rank %d: flat: %v", r, err)
			return
		}
		hier, err := e.HierAllreduce(hearInput(pr, r, n), pr.dt, pr.op)
		if err != nil {
			t.Errorf("rank %d: hier: %v", r, err)
			return
		}
		if !bytes.Equal(flat.Data, hier.Data) {
			t.Errorf("rank %d: hier and flat hear allreduce differ", r)
		}
		checkHearResult(t, pr, hier, p, n, "hier")

		fpr := hearPair{"float64_sum", encmpi.Float64, encmpi.OpSum}
		fh, err := e.HierAllreduce(hearInput(fpr, r, n), fpr.dt, fpr.op)
		if err != nil {
			t.Errorf("rank %d: hier float64: %v", r, err)
			return
		}
		checkHearResult(t, fpr, fh, p, n, "hier")

		plan := e.AllreduceInit(pr.dt, pr.op)
		for cycle := 0; cycle < 3; cycle++ {
			got, err := plan.Start(hearInput(pr, r, n)).Wait()
			if err != nil {
				t.Errorf("rank %d: plan cycle %d: %v", r, cycle, err)
				return
			}
			checkHearResult(t, pr, got, p, n, "plan")
		}
	}, encmpi.WithTopology(func(rank int) int { return rank / 4 }))
}

// TestHearNonceStepLockstep drives many back-to-back operations over buffers
// large enough for the worker-pool fan-out, so the per-operation nonce-key
// step and the pooled keystream kernels run concurrently under -race and the
// shared keystream must stay in lockstep across ranks for every iteration.
func TestHearNonceStepLockstep(t *testing.T) {
	const p, n, iters = 4, 48 << 10, 12 // 192 KiB of int32 → multiple chunks
	runHear(t, p, hearSpec(), func(e *encmpi.EncryptedComm) {
		r := e.Rank()
		pr := hearPair{"int32_sum", encmpi.Int32, encmpi.OpSum}
		in := hearInput(pr, r, n)
		for i := 0; i < iters; i++ {
			got, err := e.Allreduce(in, pr.dt, pr.op)
			if err != nil {
				t.Errorf("rank %d: iter %d: %v", r, i, err)
				return
			}
			checkHearResult(t, pr, got, p, n, "lockstep")
			got.Release()
		}
	})
}

// TestHearUnsupportedPair: the hear engine's kernels cover a strict subset
// of the plaintext reduction pairs; everything else must fail loudly with a
// wrapped mpi.ErrUnsupportedReduce instead of silently falling back to the
// plaintext path.
func TestHearUnsupportedPair(t *testing.T) {
	runHear(t, 2, hearSpec(), func(e *encmpi.EncryptedComm) {
		buf := encmpi.Float64Buffer([]float64{1, 2})
		if _, err := e.Allreduce(buf, encmpi.Float64, encmpi.OpMax); !errors.Is(err, encmpi.ErrUnsupportedReduce) {
			t.Errorf("float64 max allreduce: err = %v, want ErrUnsupportedReduce", err)
		}
		if _, err := e.Reduce(0, buf, encmpi.Float64, encmpi.OpMax); !errors.Is(err, encmpi.ErrUnsupportedReduce) {
			t.Errorf("float64 max reduce: err = %v, want ErrUnsupportedReduce", err)
		}
		if _, err := e.Scan(buf, encmpi.Float64, encmpi.OpProd); !errors.Is(err, encmpi.ErrUnsupportedReduce) {
			t.Errorf("float64 prod scan: err = %v, want ErrUnsupportedReduce", err)
		}
		plan := e.AllreduceInit(encmpi.Int64, encmpi.OpSum)
		if _, err := plan.Start(buf).Wait(); !errors.Is(err, encmpi.ErrUnsupportedReduce) {
			t.Errorf("int64 sum plan: err = %v, want ErrUnsupportedReduce", err)
		}
	})

	// The classic engines keep the full plaintext pair coverage.
	if err := encmpi.RunShm(2, func(c *encmpi.Comm) {
		e := encmpi.EncryptWith(c, encmpi.Unencrypted())
		got, err := e.Allreduce(encmpi.Float64Buffer([]float64{float64(c.Rank())}), encmpi.Float64, encmpi.OpMax)
		if err != nil {
			t.Errorf("plaintext max: %v", err)
			return
		}
		if encmpi.Float64s(got)[0] != 1 {
			t.Errorf("plaintext max = %v, want 1", encmpi.Float64s(got)[0])
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestHearHostileBytesNoPanic is the comm-layer fault sweep: the hear path
// has NO integrity protection, so a hostile contribution injected into the
// reduction must decode to garbage without a panic and WITHOUT an error —
// the documented no-failure-signal property (DESIGN.md §16). Rank 1 plays
// the adversary by feeding raw hostile bytes into the plaintext collective
// underneath while rank 0 runs the honest hear path.
func TestHearHostileBytesNoPanic(t *testing.T) {
	for _, pr := range []hearPair{
		{"int32_sum", encmpi.Int32, encmpi.OpSum},
		{"float64_sum", encmpi.Float64, encmpi.OpSum},
		{"int32_prod", encmpi.Int32, encmpi.OpProd},
	} {
		pr := pr
		t.Run(pr.name, func(t *testing.T) {
			const n = 33
			runHear(t, 2, hearSpec(), func(e *encmpi.EncryptedComm) {
				r := e.Rank()
				// Honest warm-up: completes the key ceremony and proves the
				// channel works before the attack.
				got, err := e.Allreduce(hearInput(pr, r, n), pr.dt, pr.op)
				if err != nil {
					t.Errorf("rank %d: warm-up: %v", r, err)
					return
				}
				checkHearResult(t, pr, got, 2, n, "warm-up")

				if r == 0 {
					res, err := e.Allreduce(hearInput(pr, 0, n), pr.dt, pr.op)
					if err != nil {
						t.Errorf("honest rank: hostile round returned error %v; hear has no auth and must decode garbage silently", err)
					}
					_ = res // garbage by construction; no failure signal exists
					return
				}
				// Adversary: raw hostile bytes straight into the plaintext
				// collective the hear path rides (no mask, no key).
				hostile := make([]byte, n*pr.dt.Size())
				for i := range hostile {
					hostile[i] = byte(i*181 + 97)
				}
				e.Unwrap().Allreduce(encmpi.Bytes(hostile), pr.dt, pr.op)
			})
		})
	}
}

// TestHearKeystreamCounters pins the obs accounting: hear operations charge
// the dedicated hear counters (keystream elements in, seal/open untouched),
// so the wire-byte invariant of the AEAD engines stays exact.
func TestHearKeystreamCounters(t *testing.T) {
	const p, n, iters = 2, 64, 5
	reg := encmpi.NewRegistry(p)
	runHear(t, p, hearSpec(), func(e *encmpi.EncryptedComm) {
		r := e.Rank()
		pr := hearPair{"int32_sum", encmpi.Int32, encmpi.OpSum}
		for i := 0; i < iters; i++ {
			got, err := e.Allreduce(hearInput(pr, r, n), pr.dt, pr.op)
			if err != nil {
				t.Errorf("rank %d: iter %d: %v", r, i, err)
				return
			}
			checkHearResult(t, pr, got, p, n, "counter")
		}
	}, encmpi.WithMetrics(reg))

	c := reg.Snapshot().Total.Crypto
	if want := uint64(p * iters); c.HearEncrypts != want {
		t.Errorf("HearEncrypts = %d, want %d", c.HearEncrypts, want)
	}
	if want := uint64(p * iters); c.HearDecrypts != want {
		t.Errorf("HearDecrypts = %d, want %d", c.HearDecrypts, want)
	}
	// Each operation derives keystream for n elements on encrypt and n on
	// decrypt, per rank; the ceremony contributes none.
	if want := uint64(p * iters * 2 * n); c.HearKeystreamElems != want {
		t.Errorf("HearKeystreamElems = %d, want %d", c.HearKeystreamElems, want)
	}
	// The ceremony's sealed records are the only AEAD work: p allgather
	// records sealed once each plus the root's nonce-key bcast record.
	if want := uint64(p + 1); c.Seals != want {
		t.Errorf("Seals = %d, want %d (ceremony only)", c.Seals, want)
	}
}

// TestHearPlanZeroAllocs is the steady-state allocation gate ridden by
// scripts/check.sh: once the persistent plan's first cycle has warmed the
// buffer pool and the pre-bound keystream tasks, an Allreduce cycle under
// the hear engine must not allocate — including the worker-pool fan-out
// (testing.AllocsPerRun counts all goroutines).
func TestHearPlanZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation randomizes pool reuse; alloc counts are meaningless")
	}
	const n = 64 << 10 // 256 KiB of int32: multiple chunks through the pool
	if err := encmpi.RunShm(1, func(c *encmpi.Comm) {
		eng, err := encmpi.NewEngine(encmpi.EngineSpec{Kind: "hear"})
		if err != nil {
			t.Error(err)
			return
		}
		e := encmpi.EncryptWith(c, eng)
		plan := e.AllreduceInit(encmpi.Int32, encmpi.OpSum)
		buf := encmpi.Int32Buffer(make([]int32, n))
		for i := 0; i < 3; i++ { // warm pool, tasks, and ceremony
			res, err := plan.Start(buf).Wait()
			if err != nil {
				t.Error(err)
				return
			}
			res.Release()
		}
		allocs := testing.AllocsPerRun(50, func() {
			res, err := plan.Start(buf).Wait()
			if err != nil {
				t.Error(err)
				return
			}
			res.Release()
		})
		if allocs > 0 {
			t.Errorf("steady-state hear allreduce cycle allocates %.1f objects/run, want 0", allocs)
		}
	}); err != nil {
		t.Fatal(err)
	}
}
