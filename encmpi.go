// Package encmpi is a Go reproduction of "An Empirical Study of
// Cryptographic Libraries for MPI Communications" (IEEE CLUSTER 2019): an
// MPI-style message-passing runtime whose point-to-point and collective
// communication is protected with AES-GCM, a discrete-event cluster
// simulator calibrated to the paper's 10 GbE / 40 Gb InfiniBand testbed,
// three from-scratch AES-GCM implementations spanning the performance range
// of the C libraries the paper studies, and a benchmark harness that
// regenerates every table and figure of the paper's evaluation.
//
// This file is the public facade: it re-exports the types a downstream user
// needs so the library can be consumed without reaching into internal
// packages. See README.md for a tour and DESIGN.md for the architecture.
//
// Quick start (see examples/quickstart for the complete program):
//
//	err := encmpi.RunShm(2, func(c *encmpi.Comm) {
//	    sess, _ := encmpi.NewSession(key)
//	    e, _ := sess.Attach(c)
//	    if c.Rank() == 0 {
//	        e.Send(1, 0, encmpi.Bytes([]byte("secret")))
//	    } else {
//	        buf, _, err := e.Recv(0, 0)
//	        ...
//	    }
//	})
//
// A Session binds every record to its communication context (session id,
// epoch, endpoints, routine, tag, sequence) via AEAD additional data and
// supports zero-downtime rekeying; the lower-level Encrypt/EncryptWith
// remain for the paper-faithful baseline and the cost-model engines.
package encmpi

import (
	"encmpi/internal/aead"
	"encmpi/internal/aead/codecs"
	"encmpi/internal/cluster"
	"encmpi/internal/costmodel"
	enc "encmpi/internal/encmpi"
	"encmpi/internal/job"
	"encmpi/internal/mpi"
	"encmpi/internal/simnet"
)

// Core message-passing types.
type (
	// Comm is a per-rank communicator (the plaintext MPI layer).
	Comm = mpi.Comm
	// Buffer is a message payload: real bytes or a simulated length.
	Buffer = mpi.Buffer
	// Request is a non-blocking plaintext operation handle.
	Request = mpi.Request
	// Status describes a completed receive.
	Status = mpi.Status

	// EncryptedComm wraps a Comm with the paper's Encrypted_* routines.
	EncryptedComm = enc.Comm
	// EncryptedRequest is a non-blocking encrypted operation handle whose
	// decryption runs inside Wait.
	EncryptedRequest = enc.Request

	// Engine performs or models authenticated encryption.
	Engine = enc.Engine
	// Codec is a concrete AEAD implementation.
	Codec = aead.Codec
	// NonceSource produces unique 12-byte nonces.
	NonceSource = aead.NonceSource

	// ClusterSpec describes a simulated machine.
	ClusterSpec = cluster.Spec
	// NetConfig describes a simulated interconnect.
	NetConfig = simnet.Config
	// SimResult reports a simulated job's timing.
	SimResult = job.SimResult

	// Datatype describes the element type of a reduction buffer.
	Datatype = mpi.Datatype
	// ReduceOp is a reduction operator.
	ReduceOp = mpi.Op
)

// Reduction datatypes and operators.
const (
	Float64 Datatype = mpi.Float64
	Int64   Datatype = mpi.Int64
	Int32   Datatype = mpi.Int32
	Uint32  Datatype = mpi.Uint32
	Float32 Datatype = mpi.Float32

	OpSum  ReduceOp = mpi.OpSum
	OpMax  ReduceOp = mpi.OpMax
	OpMin  ReduceOp = mpi.OpMin
	OpProd ReduceOp = mpi.OpProd
)

// Wildcards and wire-format constants.
const (
	AnySource = mpi.AnySource
	AnyTag    = mpi.AnyTag
	// Undefined opts a rank out of a Comm.Split (MPI_UNDEFINED).
	Undefined = mpi.Undefined
	// Overhead is the per-message wire expansion of AES-GCM:
	// 12-byte nonce + 16-byte tag.
	Overhead = aead.Overhead
	// NonceSize is the AES-GCM nonce length in bytes.
	NonceSize = aead.NonceSize
)

// ErrUnsupportedReduce matches (via errors.Is) reduction validation
// failures: an unknown (datatype, op) pair, including the additive-noise
// engine's narrower kernel coverage.
var ErrUnsupportedReduce = mpi.ErrUnsupportedReduce

// Bytes wraps a real byte slice as a message payload.
func Bytes(b []byte) Buffer { return mpi.Bytes(b) }

// Synthetic creates a length-only payload for simulation workloads.
func Synthetic(n int) Buffer { return mpi.Synthetic(n) }

// Float64Buffer wraps a float64 slice as a reduction payload.
func Float64Buffer(v []float64) Buffer { return mpi.Float64Buffer(v) }

// Float64s reinterprets a reduction payload as float64 elements.
func Float64s(b Buffer) []float64 { return mpi.Float64s(b) }

// Float32Buffer wraps a float32 slice as a reduction payload.
func Float32Buffer(v []float32) Buffer { return mpi.Float32Buffer(v) }

// Float32s reinterprets a reduction payload as float32 elements.
func Float32s(b Buffer) []float32 { return mpi.Float32s(b) }

// Int32Buffer wraps an int32 slice as a reduction payload.
func Int32Buffer(v []int32) Buffer { return mpi.Int32Buffer(v) }

// Int32s reinterprets a reduction payload as int32 elements.
func Int32s(b Buffer) []int32 { return mpi.Int32s(b) }

// Uint32Buffer wraps a uint32 slice as a reduction payload.
func Uint32Buffer(v []uint32) Buffer { return mpi.Uint32Buffer(v) }

// Uint32s reinterprets a reduction payload as uint32 elements.
func Uint32s(b Buffer) []uint32 { return mpi.Uint32s(b) }

// WireLen returns the on-wire length of an encrypted message whose
// plaintext is n bytes long.
func WireLen(n int) int { return aead.WireLen(n) }

// NewCodec builds a registered AEAD implementation ("aesstd", "aessoft",
// "aesref", "ccmsoft", "ccmref") for a 16/24/32-byte AES key.
func NewCodec(name string, key []byte) (Codec, error) { return codecs.New(name, key) }

// CodecNames lists the registered AEAD implementations.
func CodecNames() []string { return codecs.Names() }

// GCMCodecNames lists just the AES-GCM implementations (the subset the
// paper's byte-accounting invariant — wire = plain + 28 per message —
// holds for).
func GCMCodecNames() []string { return codecs.GCMNames() }

// Encrypt wraps a communicator with real AES-GCM encryption under the given
// codec. noncePrefix must be unique per rank sharing a key (use the rank).
// Options may attach observability: WithMetrics(g) charges this rank's
// seal/open work to g's corresponding per-rank slot.
//
// Deprecated: use NewSession and Session.Attach. A session seals the same
// wire format at the same cost but additionally authenticates each record's
// communication context (session, epoch, endpoints, routine, tag, sequence,
// chunk) as AEAD additional data and supports zero-downtime rekeying;
// Encrypt-wrapped communicators detect replays only via the heuristic
// sequence window of ReplayGuard and cannot rekey. Encrypt remains for the
// paper-faithful baseline and for the CCM ablation codecs, which cannot
// carry AAD.
func Encrypt(c *Comm, codec Codec, noncePrefix uint32, opts ...Option) *EncryptedComm {
	return EncryptWith(c, enc.NewRealEngine(codec, aead.NewCounterNonce(noncePrefix)), opts...)
}

// EncryptWith wraps a communicator with an explicit engine (e.g. a cost
// model of one of the paper's libraries, or NullEngine for a baseline).
// Options are as for Encrypt. For real AEAD encryption prefer NewSession and
// Session.Attach, which bind records to their communication context;
// EncryptWith remains the way to wire cost-model and baseline engines (and a
// Session.Engine, explicitly).
func EncryptWith(c *Comm, e Engine, opts ...Option) *EncryptedComm {
	cfg := buildConfig(opts)
	var wopts []enc.WrapOption
	if cfg.metrics != nil {
		wopts = append(wopts, enc.ObserveWith(cfg.metrics.Rank(c.Rank())))
	}
	if cfg.pipeThreshold != 0 {
		// A negative threshold disables chunking inside WithPipeline; zero
		// (unset here) leaves the wrapped communicator's default.
		wopts = append(wopts, enc.WithPipeline(cfg.pipeThreshold, 0))
	}
	return enc.Wrap(c, e, wopts...)
}

// Unencrypted returns the pass-through baseline engine.
func Unencrypted() Engine { return enc.NullEngine{} }

// LibraryModel returns a virtual-time engine modeling one of the paper's
// libraries ("boringssl", "openssl", "libsodium", "cryptopp") under a
// toolchain variant ("gcc485" or "mvapich") and key length (128 or 256).
func LibraryModel(library, variant string, keyBits int) (Engine, error) {
	p, err := costmodel.Lookup(library, costmodel.Variant(variant), keyBits)
	if err != nil {
		return nil, err
	}
	return enc.NewModelEngine(p), nil
}

// ExchangeKey runs the X25519 session-key distribution over the plaintext
// wire (the paper's future-work key distribution). All ranks receive the
// same keyLen-byte key.
func ExchangeKey(c *Comm, keyLen int) ([]byte, error) { return enc.ExchangeKey(c, keyLen) }

// RunShm executes an n-rank job over the in-process transport. Options may
// attach metrics (WithMetrics) or wire faults (WithFaults).
func RunShm(n int, body func(c *Comm), opts ...Option) error {
	return job.RunShmOpts(n, buildConfig(opts).jobOptions(), body)
}

// RunTCP executes an n-rank job over real loopback TCP sockets. Options are
// as for RunShm.
func RunTCP(n int, body func(c *Comm), opts ...Option) error {
	return job.RunTCPOpts(n, buildConfig(opts).jobOptions(), body)
}

// RunSim executes a job on the discrete-event cluster simulator. Options may
// additionally attach a fabric trace collector (WithTrace).
func RunSim(spec ClusterSpec, cfg NetConfig, body func(c *Comm), opts ...Option) (SimResult, error) {
	return job.RunSimOpts(spec, cfg, buildConfig(opts).jobOptions(), body)
}

// PaperTestbed returns the paper's cluster shape (8-core nodes).
func PaperTestbed(ranks, nodes int) ClusterSpec { return cluster.PaperTestbed(ranks, nodes) }

// Eth10G returns the calibrated 10 Gbps Ethernet fabric preset.
func Eth10G() NetConfig { return simnet.Eth10G() }

// Eth10GContended is Eth10G with the small-message NIC contention knee
// enabled: with many ranks per node sharing one NIC, flat collectives pay a
// per-message gap inflation that the leader-based hierarchical collectives
// avoid (DESIGN.md §15).
func Eth10GContended() NetConfig { return simnet.Eth10GContended() }

// IB40G returns the calibrated 40 Gbps InfiniBand fabric preset.
func IB40G() NetConfig { return simnet.IB40G() }
