package encmpi

import (
	"fmt"
	"time"

	"encmpi/internal/aead"
	"encmpi/internal/aead/codecs"
	"encmpi/internal/session"
)

// Session is a keyed security association with an epoch counter — the
// preferred way to encrypt a communicator (DESIGN.md §13). Every record a
// session seals authenticates its full communication context (session id,
// epoch, sender, receiver, routine, tag, sequence, chunk position) as AEAD
// additional data, so a replayed, cross-session-spliced, or reflected
// ciphertext fails authentication itself — no downstream heuristics.
// Sessions rekey without downtime: Rekey (or WithRekeyInterval) rolls to a
// fresh derived key while in-flight traffic from the previous epoch keeps
// opening for a bounded grace window.
//
// Each rank constructs its own Session from the shared master key inside the
// job body and attaches it to its communicator; the instances never talk to
// each other — agreement comes from the deterministic key schedule and AAD
// derivation. Multiple sessions (distinct keys) may run over one job's
// shared TCP connections: each travels on its own wire lane, and the wire
// engine interleaves lanes fairly at flush time.
//
//	sess, _ := encmpi.NewSession(key)
//	e, _ := sess.Attach(c)
//	e.Send(1, 0, encmpi.Bytes(secret))
type Session struct {
	s *session.Session
}

// SessionOption configures NewSession.
type SessionOption func(*sessionConfig)

type sessionConfig struct {
	codec      string
	id         uint64
	grace      time.Duration
	rekeyEvery time.Duration
}

// WithSessionCodec selects the AEAD implementation sessions derive their
// per-epoch codecs from ("aesstd" — the default — "aessoft", "aessoft8",
// "aesref"). The CCM tiers cannot authenticate additional data and are
// rejected by NewSession.
func WithSessionCodec(name string) SessionOption {
	return func(c *sessionConfig) { c.codec = name }
}

// WithSessionID overrides the session identifier authenticated into every
// record. The default — 0 — derives a stable id from the key, so peers
// constructing from the same key agree without coordination; set it
// explicitly when two sessions must share one key.
func WithSessionID(id uint64) SessionOption {
	return func(c *sessionConfig) { c.id = id }
}

// WithRekeyInterval rolls the session epoch automatically once the current
// epoch has sealed for d. d ≤ 0 disables automatic rekeying (the default);
// Rekey remains available either way.
func WithRekeyInterval(d time.Duration) SessionOption {
	return func(c *sessionConfig) { c.rekeyEvery = d }
}

// WithEpochGrace bounds how long a retired epoch keeps opening records after
// a rekey. The default (5s) covers the in-flight window of a chunked
// transfer mid-message; d ≤ 0 means no grace — records from a retired epoch
// reject immediately.
func WithEpochGrace(d time.Duration) SessionOption {
	return func(c *sessionConfig) {
		if d <= 0 {
			d = -1
		}
		c.grace = d
	}
}

// NewSession builds a session from a 16/24/32-byte master key (for example
// one distributed by ExchangeKey). Per-epoch AES keys are derived from it
// with HKDF-SHA256; the master itself never seals a record.
func NewSession(key []byte, opts ...SessionOption) (*Session, error) {
	cfg := sessionConfig{codec: "aesstd"}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	s, err := session.New(session.Config{
		Key:        key,
		Build:      func(k []byte) (aead.Codec, error) { return codecs.New(cfg.codec, k) },
		ID:         cfg.id,
		Grace:      cfg.grace,
		RekeyEvery: cfg.rekeyEvery,
	})
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// Attach binds the session to a communicator endpoint and returns the
// encrypted communicator whose records it seals. The session's traffic
// travels on its own wire lane, so several sessions can share one job's
// connections without their frames cross-matching. Options are as for
// Encrypt (WithMetrics, WithPipelineThreshold); when the job already carries
// a metrics registry the session's counters land there automatically.
//
// A Session is one endpoint's security association: attach it to exactly one
// communicator (construct one Session per rank, and per communicator).
func (s *Session) Attach(c *Comm, opts ...Option) (*EncryptedComm, error) {
	g := buildConfig(opts).metrics
	if g == nil {
		g = c.Registry()
	}
	if err := s.s.Attach(c.Rank(), c.Size(), g.Session(s.ScopeID())); err != nil {
		return nil, err
	}
	return EncryptWith(c.WithLane(s.s.Lane()), s.s.Engine(), opts...), nil
}

// Rekey rolls the session to the next epoch: new records seal under a fresh
// derived key immediately, while in-flight records from the retired epoch
// keep opening for the grace window. Both ends rekey independently — a
// record from a peer that rekeyed first opens against the derived-on-demand
// next epoch without advancing this end's seal epoch.
func (s *Session) Rekey() error { return s.s.Rekey() }

// Epoch returns the current seal epoch (0 until the first rekey).
func (s *Session) Epoch() uint32 { return s.s.Epoch() }

// Derivations returns the lifetime count of HKDF epoch-key derivations the
// session has run. It moves on NewSession, Rekey, and ahead-of-time epoch
// opens — never on steady-state traffic, which is what the persistent
// collectives' init-once/start-many contract pins in tests.
func (s *Session) Derivations() uint64 { return s.s.Derivations() }

// ID returns the session identifier authenticated into every record.
func (s *Session) ID() uint64 { return s.s.ID() }

// Lane returns the wire lane the session's frames travel on.
func (s *Session) Lane() uint16 { return s.s.Lane() }

// ScopeID is the key under which this session's counters appear in metrics
// snapshots (Snapshot.Sessions) and Prometheus output.
func (s *Session) ScopeID() string { return fmt.Sprintf("%016x", s.s.ID()) }

// Engine exposes the session's crypto engine for explicit wiring
// (EncryptWith); Attach is the ordinary path.
func (s *Session) Engine() Engine { return s.s.Engine() }
