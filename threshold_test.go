package encmpi_test

import (
	"fmt"
	"testing"

	"encmpi"
)

// TestWithEagerThresholdBoundary pins the protocol cutover the
// WithEagerThreshold option controls, at the exact boundary: a message of
// threshold−1 bytes travels eagerly (one wire message, from the sender
// only), and messages of threshold and threshold+1 bytes go through the
// RTS/CTS/DATA rendezvous handshake (two wire messages from the sender, one
// — the CTS — from the receiver). The transport message counts distinguish
// the two paths unambiguously, and the payload must arrive intact either
// way. Run over both real transports so the TCP wire engine's batched path
// is covered, not just the in-process one.
func TestWithEagerThresholdBoundary(t *testing.T) {
	const threshold = 2 << 10
	launchers := []struct {
		name string
		run  func(n int, body func(*encmpi.Comm), opts ...encmpi.Option) error
	}{
		{"shm", encmpi.RunShm},
		{"tcp", encmpi.RunTCP},
	}
	cases := []struct {
		size int
		// senderMsgs/receiverMsgs are the wire messages each side must emit:
		// eager 1/0, rendezvous (RTS+DATA)/(CTS) = 2/1.
		senderMsgs, receiverMsgs uint64
	}{
		{threshold - 1, 1, 0},
		{threshold, 2, 1},
		{threshold + 1, 2, 1},
	}
	for _, l := range launchers {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/size%d", l.name, tc.size), func(t *testing.T) {
				payload := make([]byte, tc.size)
				for i := range payload {
					payload[i] = byte(i * 31)
				}
				reg := encmpi.NewRegistry(2)
				err := l.run(2, func(c *encmpi.Comm) {
					switch c.Rank() {
					case 0:
						if err := c.Send(1, 5, encmpi.Bytes(payload)); err != nil {
							t.Error(err)
						}
					case 1:
						got, _ := c.Recv(0, 5)
						defer got.Release()
						if got.Len() != tc.size {
							t.Errorf("recv len = %d, want %d", got.Len(), tc.size)
							return
						}
						for i, b := range got.Data {
							if b != byte(i*31) {
								t.Errorf("payload corrupt at byte %d", i)
								return
							}
						}
					}
				}, encmpi.WithEagerThreshold(threshold), encmpi.WithMetrics(reg))
				if err != nil {
					t.Fatal(err)
				}
				snap := reg.Snapshot()
				if got := snap.Ranks[0].Transport.MsgsSent; got != tc.senderMsgs {
					t.Errorf("sender wire messages = %d, want %d (wrong protocol path for %d bytes at threshold %d)",
						got, tc.senderMsgs, tc.size, threshold)
				}
				if got := snap.Ranks[1].Transport.MsgsSent; got != tc.receiverMsgs {
					t.Errorf("receiver wire messages = %d, want %d", got, tc.receiverMsgs)
				}
			})
		}
	}
}

// TestWireBatchingToggle pins the A/B contract of WithWireBatching over the
// facade: batching on records wire-engine flushes in the metrics, batching
// off records none, and the traffic is identical either way.
func TestWireBatchingToggle(t *testing.T) {
	for _, batched := range []bool{true, false} {
		t.Run(fmt.Sprintf("batched=%v", batched), func(t *testing.T) {
			reg := encmpi.NewRegistry(2)
			err := encmpi.RunTCP(2, func(c *encmpi.Comm) {
				const rounds = 16
				switch c.Rank() {
				case 0:
					for i := 0; i < rounds; i++ {
						if err := c.Send(1, i, encmpi.Bytes([]byte("toggle probe"))); err != nil {
							t.Error(err)
							return
						}
					}
				case 1:
					for i := 0; i < rounds; i++ {
						buf, _ := c.Recv(0, i)
						if string(buf.Data) != "toggle probe" {
							t.Errorf("round %d: %q", i, buf.Data)
						}
						buf.Release()
					}
				}
			}, encmpi.WithWireBatching(batched), encmpi.WithMetrics(reg))
			if err != nil {
				t.Fatal(err)
			}
			wire := reg.Snapshot().Wire
			if batched && wire.Flushes == 0 {
				t.Fatal("batching enabled but no wire flushes recorded")
			}
			if !batched && wire.Flushes != 0 {
				t.Fatalf("batching disabled but %d wire flushes recorded", wire.Flushes)
			}
		})
	}
}
