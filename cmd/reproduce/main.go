// Command reproduce regenerates every table and figure of the paper's
// evaluation section on the simulated cluster, printing each with the
// paper's numbers alongside. With -md it emits a markdown report suitable
// for EXPERIMENTS.md.
//
// Usage:
//
//	reproduce [-quick] [-md] [-exp table1,fig4,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"encmpi"
)

func main() {
	quick := flag.Bool("quick", false, "reduced iteration counts (deterministic simulator; rankings unchanged)")
	md := flag.Bool("md", false, "emit markdown tables")
	expList := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	flag.Parse()

	opts := encmpi.ReproOptions{Quick: *quick}

	var exps []encmpi.Experiment
	if *expList == "" {
		exps = encmpi.Experiments()
	} else {
		for _, id := range strings.Split(*expList, ",") {
			e, err := encmpi.LookupExperiment(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			exps = append(exps, e)
		}
	}

	for _, e := range exps {
		start := time.Now()
		tb, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *md {
			fmt.Printf("### %s — %s\n\n%s\n", e.ID, e.Title, tb.Markdown())
		} else {
			fmt.Printf("== %s (%s, %.1fs)\n%s\n", e.ID, e.Title, time.Since(start).Seconds(), tb)
		}
	}
}
