// Command nasbench runs the NAS parallel benchmark skeletons on the
// simulated cluster (paper Tables IV and VIII): class C, 64 ranks, 8 nodes
// by default, with per-kernel compute budgets calibrated against the paper's
// Ethernet baselines.
//
//	nasbench [-net eth|ib] [-class S|A|C] [-ranks 64] [-nodes 8] [-kernels CG,FT,...]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"encmpi"
)

func main() {
	net := flag.String("net", "eth", "network: eth or ib")
	class := flag.String("class", "C", "problem class: S, A, or C")
	ranks := flag.Int("ranks", 64, "number of ranks")
	nodes := flag.Int("nodes", 8, "number of nodes")
	kernelsFlag := flag.String("kernels", "", "comma-separated kernels (default: all)")
	flag.Parse()

	cfg := encmpi.Eth10G()
	variant := "gcc485"
	if *net == "ib" {
		cfg = encmpi.IB40G()
		variant = "mvapich"
	}

	kernels := encmpi.NASKernels()
	if *kernelsFlag != "" {
		kernels = nil
		for _, k := range strings.Split(*kernelsFlag, ",") {
			kernels = append(kernels, strings.ToUpper(strings.TrimSpace(k)))
		}
	}
	classByte := (*class)[0]

	// Calibrate compute budgets on the Ethernet baselines (class C only;
	// other classes run with a nominal budget).
	budgets := map[string]time.Duration{}
	for _, k := range kernels {
		if classByte == 'C' {
			per, err := encmpi.NASCalibrate(k, 'C', *ranks, *nodes, encmpi.Eth10G(), encmpi.NASEthBaselineSeconds()[k])
			if err != nil {
				log.Fatal(err)
			}
			budgets[k] = per
		} else {
			budgets[k] = 100 * time.Microsecond
		}
	}

	cols := append([]string{"Library"}, kernels...)
	cols = append(cols, "Total", "Overhead")
	tb := encmpi.NewTable(
		fmt.Sprintf("NAS class %s runtimes (s), %d ranks / %d nodes, %s", *class, *ranks, *nodes, cfg.Name), cols...)

	var baseTimes []float64
	for _, l := range []string{"none", "boringssl", "libsodium", "cryptopp"} {
		mk := encmpi.Baseline()
		name := "Unencrypted"
		if l != "none" {
			eng, err := encmpi.LibraryModel(l, variant, 256)
			if err != nil {
				log.Fatal(err)
			}
			mk = func(int) encmpi.Engine { return eng }
			name = l
		}
		row := []string{name}
		var times []float64
		var sum float64
		for _, k := range kernels {
			res, err := encmpi.RunNAS(k, classByte, *ranks, *nodes, cfg, mk, budgets[k])
			if err != nil {
				log.Fatal(err)
			}
			times = append(times, res.Elapsed.Seconds())
			sum += res.Elapsed.Seconds()
			row = append(row, fmt.Sprintf("%.2f", res.Elapsed.Seconds()))
		}
		row = append(row, fmt.Sprintf("%.2f", sum))
		if l == "none" {
			baseTimes = times
			row = append(row, "—")
		} else {
			ov, err := encmpi.OverheadFromTotals(baseTimes, times)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, encmpi.Pct(ov))
		}
		tb.Add(row...)
	}
	tb.Note("overhead = ratio of totals (Fleming–Wallace), matching the paper's methodology")
	fmt.Print(tb)
}
