// Command simtrace runs a workload on the simulated cluster with the trace
// collector attached and prints the traffic digest — per-pair volumes, NIC
// queueing, and optionally the full CSV timeline. It is the observability
// companion to the benchmark drivers: it shows *where* the bytes of an
// encrypted run went and how much the +28-byte expansion added.
//
//	simtrace [-workload alltoall|bcast|nas-cg] [-net eth|ib] [-ranks 16]
//	         [-nodes 4] [-size 16384] [-lib none|boringssl|...] [-csv]
//	         [-stats] [-statsfmt text|json|prom]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"encmpi"
)

func main() {
	workload := flag.String("workload", "alltoall", "alltoall, bcast, or nas-cg")
	net := flag.String("net", "eth", "network: eth or ib")
	ranks := flag.Int("ranks", 16, "number of ranks")
	nodes := flag.Int("nodes", 4, "number of nodes")
	size := flag.Int("size", 16<<10, "message size")
	lib := flag.String("lib", "boringssl", "library: none, boringssl, openssl, libsodium, cryptopp")
	csv := flag.Bool("csv", false, "dump the full transfer timeline as CSV")
	stats := flag.Bool("stats", false, "print per-rank runtime metrics after the run")
	statsFmt := flag.String("statsfmt", "text", "metrics format: text, json, or prom")
	flag.Parse()

	cfg := encmpi.Eth10G()
	variant := "gcc485"
	if *net == "ib" {
		cfg = encmpi.IB40G()
		variant = "mvapich"
	}

	mkEngine := encmpi.Baseline()
	if *lib != "none" {
		eng, err := encmpi.LibraryModel(*lib, variant, 256)
		if err != nil {
			log.Fatal(err)
		}
		mkEngine = func(int) encmpi.Engine { return eng }
	}

	col := &encmpi.TraceCollector{}
	opts := []encmpi.Option{encmpi.WithTrace(col)}
	var reg *encmpi.Registry
	if *stats {
		reg = encmpi.NewRegistry(*ranks)
		opts = append(opts, encmpi.WithMetrics(reg))
	}

	spec := encmpi.PaperTestbed(*ranks, *nodes)
	res, err := encmpi.RunSim(spec, cfg, func(c *encmpi.Comm) {
		e := encmpi.EncryptWith(c, mkEngine(c.Rank()))
		switch *workload {
		case "alltoall":
			blocks := make([]encmpi.Buffer, c.Size())
			for d := range blocks {
				blocks[d] = encmpi.Synthetic(*size)
			}
			if _, err := e.Alltoall(blocks); err != nil {
				panic(err)
			}
		case "bcast":
			var buf encmpi.Buffer
			if c.Rank() == 0 {
				buf = encmpi.Synthetic(*size)
			}
			if _, err := e.Bcast(0, buf); err != nil {
				panic(err)
			}
		case "nas-cg":
			p, err := encmpi.NASParamsFor("CG", 'A')
			if err != nil {
				panic(err)
			}
			encmpi.RunNASKernel(e, p, 10*time.Microsecond)
		default:
			panic(fmt.Sprintf("unknown workload %q", *workload))
		}
	}, opts...)
	if err != nil {
		log.Fatal(err)
	}

	// With a machine metrics format, stdout carries only the snapshot so it
	// can be piped straight into a parser; the trace summary moves to stderr.
	machine := reg != nil && *statsFmt != "text" && *statsFmt != ""
	human := os.Stdout
	if machine {
		human = os.Stderr
	}
	fmt.Fprintf(human, "workload %s on %s, %d ranks / %d nodes, library %s\n",
		*workload, cfg.Name, *ranks, *nodes, *lib)
	fmt.Fprintf(human, "virtual time: %v  (packets %d, wire bytes %d)\n\n",
		res.Elapsed, res.Packets, res.Bytes)
	fmt.Fprint(human, col.Summary())
	if *csv {
		fmt.Fprint(human, col.CSV())
	}
	if reg != nil {
		if !machine {
			fmt.Println()
		}
		if err := encmpi.WriteSnapshot(os.Stdout, reg.Snapshot(), *statsFmt); err != nil {
			log.Fatal(err)
		}
	}
}
