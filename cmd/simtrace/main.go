// Command simtrace runs a workload on the simulated cluster with the trace
// collector attached and prints the traffic digest — per-pair volumes, NIC
// queueing, and optionally the full CSV timeline. It is the observability
// companion to the benchmark drivers: it shows *where* the bytes of an
// encrypted run went and how much the +28-byte expansion added.
//
//	simtrace [-workload alltoall|bcast|nas-cg] [-net eth|ib] [-ranks 16]
//	         [-nodes 4] [-size 16384] [-lib none|boringssl|...] [-csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"encmpi/internal/cluster"
	"encmpi/internal/costmodel"
	"encmpi/internal/encmpi"
	"encmpi/internal/job"
	"encmpi/internal/mpi"
	"encmpi/internal/nas"
	"encmpi/internal/simnet"
	"encmpi/internal/trace"
)

func main() {
	workload := flag.String("workload", "alltoall", "alltoall, bcast, or nas-cg")
	net := flag.String("net", "eth", "network: eth or ib")
	ranks := flag.Int("ranks", 16, "number of ranks")
	nodes := flag.Int("nodes", 4, "number of nodes")
	size := flag.Int("size", 16<<10, "message size")
	lib := flag.String("lib", "boringssl", "library: none, boringssl, openssl, libsodium, cryptopp")
	csv := flag.Bool("csv", false, "dump the full transfer timeline as CSV")
	flag.Parse()

	cfg := simnet.Eth10G()
	variant := costmodel.GCC485
	if *net == "ib" {
		cfg = simnet.IB40G()
		variant = costmodel.MVAPICH
	}

	mkEngine := func(int) encmpi.Engine { return encmpi.NullEngine{} }
	if *lib != "none" {
		p, err := costmodel.Lookup(*lib, variant, 256)
		if err != nil {
			log.Fatal(err)
		}
		mkEngine = func(int) encmpi.Engine { return encmpi.NewModelEngine(p) }
	}

	col := &trace.Collector{}
	spec := cluster.PaperTestbed(*ranks, *nodes)
	res, err := job.RunSimConfigured(spec, cfg,
		func(f *simnet.Fabric) { f.Trace = col.Record },
		func(c *mpi.Comm) {
			e := encmpi.Wrap(c, mkEngine(c.Rank()))
			switch *workload {
			case "alltoall":
				blocks := make([]mpi.Buffer, c.Size())
				for d := range blocks {
					blocks[d] = mpi.Synthetic(*size)
				}
				if _, err := e.Alltoall(blocks); err != nil {
					panic(err)
				}
			case "bcast":
				var buf mpi.Buffer
				if c.Rank() == 0 {
					buf = mpi.Synthetic(*size)
				}
				if _, err := e.Bcast(0, buf); err != nil {
					panic(err)
				}
			case "nas-cg":
				p, err := nas.ParamsFor("CG", 'A')
				if err != nil {
					panic(err)
				}
				nas.RunKernel(e, p, 10*time.Microsecond)
			default:
				panic(fmt.Sprintf("unknown workload %q", *workload))
			}
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s on %s, %d ranks / %d nodes, library %s\n",
		*workload, cfg.Name, *ranks, *nodes, *lib)
	fmt.Printf("virtual time: %v  (packets %d, wire bytes %d)\n\n",
		res.Elapsed, res.Packets, res.Bytes)
	fmt.Print(col.Summary())
	if *csv {
		fmt.Print(col.CSV())
	}
}
