// Command collective times Encrypted_Bcast and Encrypted_Alltoall on the
// simulated cluster (paper Tables II/III/VI/VII and Figs. 7/8/14/15).
// -op bcastpipe times the segmented pipelined broadcast (crypto/wire
// overlap down the binomial tree) for comparison with plain bcast. The
// hier_* ops time the topology-aware two-level collectives (DESIGN.md §15)
// against their flat siblings at the same shape.
//
//	collective [-op bcast|alltoall|allgather|allreduce|bcastpipe|
//	            hier_bcast|hier_allgather|hier_allreduce|hier_alltoall]
//	           [-net eth|ib] [-ranks 64] [-nodes 8]
//	           [-sizes 1,16384,4194304] [-iters 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"encmpi"
)

func main() {
	op := flag.String("op", "alltoall", "collective: bcast, alltoall, allgather, allreduce, bcastpipe (segmented pipelined bcast), or hier_{bcast,allgather,allreduce,alltoall} (two-level topology-aware)")
	net := flag.String("net", "eth", "network: eth or ib")
	ranks := flag.Int("ranks", 64, "number of ranks")
	nodes := flag.Int("nodes", 8, "number of nodes")
	sizesFlag := flag.String("sizes", "1,16384,4194304", "comma-separated message sizes")
	iters := flag.Int("iters", 20, "iterations per measurement")
	flag.Parse()

	cfg := encmpi.Eth10G()
	variant := "gcc485"
	if *net == "ib" {
		cfg = encmpi.IB40G()
		variant = "mvapich"
	}

	var sizes []int
	for _, f := range strings.Split(*sizesFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatal(err)
		}
		sizes = append(sizes, v)
	}

	cols := []string{"Library"}
	for _, s := range sizes {
		cols = append(cols, fmt.Sprintf("%dB", s))
	}
	tb := encmpi.NewTable(
		fmt.Sprintf("Encrypted_%s mean latency (µs), %d ranks / %d nodes, %s",
			*op, *ranks, *nodes, cfg.Name), cols...)

	baseLat := map[int]time.Duration{}
	for _, l := range []string{"none", "boringssl", "libsodium", "cryptopp"} {
		mk := encmpi.Baseline()
		name := "Unencrypted"
		if l != "none" {
			eng, err := encmpi.LibraryModel(l, variant, 256)
			if err != nil {
				log.Fatal(err)
			}
			mk = func(int) encmpi.Engine { return eng }
			name = l
		}
		row := []string{name}
		for _, s := range sizes {
			res, err := encmpi.Collective(cfg, mk, encmpi.CollectiveOp(*op), *ranks, *nodes, s, *iters)
			if err != nil {
				log.Fatal(err)
			}
			if l == "none" {
				baseLat[s] = res.MeanLat
				row = append(row, encmpi.Micros(res.MeanLat))
			} else {
				ov := res.MeanLat.Seconds()/baseLat[s].Seconds() - 1
				row = append(row, fmt.Sprintf("%s (+%s)", encmpi.Micros(res.MeanLat), encmpi.Pct(ov)))
			}
		}
		tb.Add(row...)
	}
	fmt.Print(tb)
}
