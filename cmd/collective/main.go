// Command collective times Encrypted_Bcast and Encrypted_Alltoall on the
// simulated cluster (paper Tables II/III/VI/VII and Figs. 7/8/14/15).
//
//	collective [-op bcast|alltoall] [-net eth|ib] [-ranks 64] [-nodes 8]
//	           [-sizes 1,16384,4194304] [-iters 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"encmpi/internal/costmodel"
	"encmpi/internal/encmpi"
	"encmpi/internal/osu"
	"encmpi/internal/report"
	"encmpi/internal/simnet"
)

func main() {
	op := flag.String("op", "alltoall", "collective: bcast or alltoall")
	net := flag.String("net", "eth", "network: eth or ib")
	ranks := flag.Int("ranks", 64, "number of ranks")
	nodes := flag.Int("nodes", 8, "number of nodes")
	sizesFlag := flag.String("sizes", "1,16384,4194304", "comma-separated message sizes")
	iters := flag.Int("iters", 20, "iterations per measurement")
	flag.Parse()

	cfg := simnet.Eth10G()
	variant := costmodel.GCC485
	if *net == "ib" {
		cfg = simnet.IB40G()
		variant = costmodel.MVAPICH
	}

	var sizes []int
	for _, f := range strings.Split(*sizesFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatal(err)
		}
		sizes = append(sizes, v)
	}

	cols := []string{"Library"}
	for _, s := range sizes {
		cols = append(cols, fmt.Sprintf("%dB", s))
	}
	tb := report.NewTable(
		fmt.Sprintf("Encrypted_%s mean latency (µs), %d ranks / %d nodes, %s",
			*op, *ranks, *nodes, cfg.Name), cols...)

	baseLat := map[int]time.Duration{}
	for _, l := range []string{"none", "boringssl", "libsodium", "cryptopp"} {
		mk := osu.Baseline()
		name := "Unencrypted"
		if l != "none" {
			p, err := costmodel.Lookup(l, variant, 256)
			if err != nil {
				log.Fatal(err)
			}
			mk = func(int) encmpi.Engine { return encmpi.NewModelEngine(p) }
			name = l
		}
		row := []string{name}
		for _, s := range sizes {
			res, err := osu.Collective(cfg, mk, osu.CollectiveOp(*op), *ranks, *nodes, s, *iters)
			if err != nil {
				log.Fatal(err)
			}
			if l == "none" {
				baseLat[s] = res.MeanLat
				row = append(row, report.Micros(res.MeanLat))
			} else {
				ov := res.MeanLat.Seconds()/baseLat[s].Seconds() - 1
				row = append(row, fmt.Sprintf("%s (+%s)", report.Micros(res.MeanLat), report.Pct(ov)))
			}
		}
		tb.Add(row...)
	}
	fmt.Print(tb)
}
