// Command osu runs the OSU-style Multiple-Pair bandwidth benchmark on the
// simulated cluster (paper Figs. 4-6 and 11-13): N senders on one node
// streaming 64-message windows to N receivers on another.
//
//	osu [-net eth|ib] [-size BYTES] [-pairs 1,2,4,8] [-iters N]
//	    [-stats] [-statsfmt text|json|prom]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"encmpi"
)

func main() {
	net := flag.String("net", "eth", "network: eth or ib")
	size := flag.Int("size", 16<<10, "message size in bytes")
	pairsFlag := flag.String("pairs", "1,2,4,8", "comma-separated pair counts")
	iters := flag.Int("iters", 50, "iterations (64-message windows each)")
	stats := flag.Bool("stats", false, "print per-rank runtime metrics after the sweep")
	statsFmt := flag.String("statsfmt", "text", "metrics format: text, json, or prom")
	flag.Parse()

	cfg := encmpi.Eth10G()
	variant := "gcc485"
	if *net == "ib" {
		cfg = encmpi.IB40G()
		variant = "mvapich"
	}

	var pairs []int
	for _, f := range strings.Split(*pairsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatal(err)
		}
		pairs = append(pairs, v)
	}

	cols := []string{"Library"}
	for _, p := range pairs {
		cols = append(cols, fmt.Sprintf("%d pair(s)", p))
	}
	tb := encmpi.NewTable(
		fmt.Sprintf("Multi-pair aggregate throughput (MB/s), %d-byte messages, %s", *size, cfg.Name), cols...)

	var reg *encmpi.Registry
	var opts []encmpi.Option
	if *stats {
		reg = encmpi.NewRegistry(16)
		opts = append(opts, encmpi.WithMetrics(reg))
	}

	for _, l := range []string{"none", "boringssl", "libsodium", "cryptopp"} {
		mk := encmpi.Baseline()
		name := "Unencrypted"
		if l != "none" {
			eng, err := encmpi.LibraryModel(l, variant, 256)
			if err != nil {
				log.Fatal(err)
			}
			mk = func(int) encmpi.Engine { return eng }
			name = l
		}
		row := []string{name}
		for _, p := range pairs {
			res, err := encmpi.MultiPair(cfg, mk, *size, p, *iters, opts...)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, encmpi.MBps(res.Throughput))
		}
		tb.Add(row...)
	}
	// With a machine metrics format, stdout carries only the snapshot so it
	// can be piped straight into a parser; the table moves to stderr.
	machine := *stats && *statsFmt != "text" && *statsFmt != ""
	human := os.Stdout
	if machine {
		human = os.Stderr
	}
	fmt.Fprint(human, tb)

	if reg != nil {
		if !machine {
			fmt.Println()
		}
		if err := encmpi.WriteSnapshot(os.Stdout, reg.Snapshot(), *statsFmt); err != nil {
			log.Fatal(err)
		}
	}
}
