// Command osu runs the OSU-style Multiple-Pair bandwidth benchmark on the
// simulated cluster (paper Figs. 4-6 and 11-13): N senders on one node
// streaming 64-message windows to N receivers on another.
//
//	osu [-net eth|ib] [-size BYTES] [-pairs 1,2,4,8] [-iters N]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"encmpi/internal/costmodel"
	"encmpi/internal/encmpi"
	"encmpi/internal/osu"
	"encmpi/internal/report"
	"encmpi/internal/simnet"
)

func main() {
	net := flag.String("net", "eth", "network: eth or ib")
	size := flag.Int("size", 16<<10, "message size in bytes")
	pairsFlag := flag.String("pairs", "1,2,4,8", "comma-separated pair counts")
	iters := flag.Int("iters", 50, "iterations (64-message windows each)")
	flag.Parse()

	cfg := simnet.Eth10G()
	variant := costmodel.GCC485
	if *net == "ib" {
		cfg = simnet.IB40G()
		variant = costmodel.MVAPICH
	}

	var pairs []int
	for _, f := range strings.Split(*pairsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatal(err)
		}
		pairs = append(pairs, v)
	}

	cols := []string{"Library"}
	for _, p := range pairs {
		cols = append(cols, fmt.Sprintf("%d pair(s)", p))
	}
	tb := report.NewTable(
		fmt.Sprintf("Multi-pair aggregate throughput (MB/s), %d-byte messages, %s", *size, cfg.Name), cols...)

	for _, l := range []string{"none", "boringssl", "libsodium", "cryptopp"} {
		mk := osu.Baseline()
		name := "Unencrypted"
		if l != "none" {
			p, err := costmodel.Lookup(l, variant, 256)
			if err != nil {
				log.Fatal(err)
			}
			mk = func(int) encmpi.Engine { return encmpi.NewModelEngine(p) }
			name = l
		}
		row := []string{name}
		for _, p := range pairs {
			res, err := osu.MultiPair(cfg, mk, *size, p, *iters)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, report.MBps(res.Throughput))
		}
		tb.Add(row...)
	}
	fmt.Print(tb)
}
