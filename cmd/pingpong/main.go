// Command pingpong runs the encrypted ping-pong benchmark on the simulated
// cluster (paper Tables I/V and Figs. 3/10): two ranks on different nodes,
// blocking send/receive, throughput over plaintext bytes.
//
//	pingpong [-net eth|ib] [-small] [-lib all|boringssl|...] [-iters N]
package main

import (
	"flag"
	"fmt"
	"log"

	"encmpi/internal/costmodel"
	"encmpi/internal/encmpi"
	"encmpi/internal/osu"
	"encmpi/internal/report"
	"encmpi/internal/simnet"
)

func main() {
	net := flag.String("net", "eth", "network: eth or ib")
	small := flag.Bool("small", false, "small-message table (1B-1KB) instead of the 4KB-2MB sweep")
	lib := flag.String("lib", "all", "library: all, none, boringssl, openssl, libsodium, cryptopp")
	iters := flag.Int("iters", 1000, "round trips per size")
	flag.Parse()

	cfg := simnet.Eth10G()
	variant := costmodel.GCC485
	if *net == "ib" {
		cfg = simnet.IB40G()
		variant = costmodel.MVAPICH
	}

	sizes := []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 2 << 20}
	if *small {
		sizes = []int{1, 16, 256, 1 << 10}
	}

	libs := []string{"none", "boringssl", "libsodium", "cryptopp"}
	if *lib != "all" {
		libs = []string{*lib}
	}

	cols := []string{"Library"}
	for _, s := range sizes {
		cols = append(cols, fmt.Sprintf("%dB", s))
	}
	tb := report.NewTable(fmt.Sprintf("Ping-pong throughput (MB/s), %s", cfg.Name), cols...)

	for _, l := range libs {
		mk := osu.Baseline()
		name := "Unencrypted"
		if l != "none" {
			p, err := costmodel.Lookup(l, variant, 256)
			if err != nil {
				log.Fatal(err)
			}
			mk = func(int) encmpi.Engine { return encmpi.NewModelEngine(p) }
			name = l
		}
		row := []string{name}
		for _, s := range sizes {
			n := *iters
			if s >= 1<<20 {
				n = *iters / 10
				if n == 0 {
					n = 1
				}
			}
			res, err := osu.PingPong(cfg, mk, s, n)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, report.MBps(res.Throughput))
		}
		tb.Add(row...)
	}
	fmt.Print(tb)
}
