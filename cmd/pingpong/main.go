// Command pingpong runs the encrypted ping-pong benchmark on the simulated
// cluster (paper Tables I/V and Figs. 3/10): two ranks on different nodes,
// blocking send/receive, throughput over plaintext bytes.
//
//	pingpong [-net eth|ib] [-small] [-lib all|boringssl|...] [-iters N]
//	         [-stats] [-statsfmt text|json|prom]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"encmpi"
)

func main() {
	net := flag.String("net", "eth", "network: eth or ib")
	small := flag.Bool("small", false, "small-message table (1B-1KB) instead of the 4KB-2MB sweep")
	lib := flag.String("lib", "all", "library: all, none, boringssl, openssl, libsodium, cryptopp")
	iters := flag.Int("iters", 1000, "round trips per size")
	stats := flag.Bool("stats", false, "print per-rank runtime metrics after the sweep")
	statsFmt := flag.String("statsfmt", "text", "metrics format: text, json, or prom")
	flag.Parse()

	cfg := encmpi.Eth10G()
	variant := "gcc485"
	if *net == "ib" {
		cfg = encmpi.IB40G()
		variant = "mvapich"
	}

	sizes := []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 2 << 20}
	if *small {
		sizes = []int{1, 16, 256, 1 << 10}
	}

	libs := []string{"none", "boringssl", "libsodium", "cryptopp"}
	if *lib != "all" {
		libs = []string{*lib}
	}

	cols := []string{"Library"}
	for _, s := range sizes {
		cols = append(cols, fmt.Sprintf("%dB", s))
	}
	tb := encmpi.NewTable(fmt.Sprintf("Ping-pong throughput (MB/s), %s", cfg.Name), cols...)

	var reg *encmpi.Registry
	var opts []encmpi.Option
	if *stats {
		reg = encmpi.NewRegistry(2)
		opts = append(opts, encmpi.WithMetrics(reg))
	}
	// With a machine metrics format, stdout carries only the snapshot so it
	// can be piped straight into a parser; human output moves to stderr.
	machine := *stats && *statsFmt != "text" && *statsFmt != ""
	human := os.Stdout
	if machine {
		human = os.Stderr
	}

	for _, l := range libs {
		mk := encmpi.Baseline()
		name := "Unencrypted"
		if l != "none" {
			eng, err := encmpi.LibraryModel(l, variant, 256)
			if err != nil {
				log.Fatal(err)
			}
			mk = func(int) encmpi.Engine { return eng }
			name = l
		}
		row := []string{name}
		for _, s := range sizes {
			n := *iters
			if s >= 1<<20 {
				n = *iters / 10
				if n == 0 {
					n = 1
				}
			}
			res, err := encmpi.PingPong(cfg, mk, s, n, opts...)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, encmpi.MBps(res.Throughput))
		}
		tb.Add(row...)
	}
	fmt.Fprint(human, tb)

	if reg != nil {
		snap := reg.Snapshot()
		if !machine {
			fmt.Println()
		}
		if err := encmpi.WriteSnapshot(os.Stdout, snap, *statsFmt); err != nil {
			log.Fatal(err)
		}
		// The exact AES-GCM accounting invariant (wire = plain + msgs*28)
		// only holds when every sealed message carries the 28-byte
		// nonce+tag expansion, i.e. for a single encrypted library.
		if *lib != "all" && *lib != "none" {
			if err := snap.CheckByteAccounting(encmpi.Overhead); err != nil {
				log.Fatalf("byte accounting: %v", err)
			}
			fmt.Fprintf(human, "byte accounting OK: wire bytes == plaintext bytes + %d per message\n", encmpi.Overhead)
		}
	}
}
