// Command encbench is the encryption-decryption benchmark (paper Figs. 2
// and 9). By default it prints the calibrated library curves used by the
// simulator; with -real it measures the repository's actual Go AEAD tiers on
// the host CPU using the paper's methodology (repeated enc+dec of each
// buffer size until the standard deviation is within 5% of the mean).
//
//	encbench [-net eth|ib] [-real] [-key 128|256]
//	         [-stats] [-statsfmt text|json|prom]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"encmpi"
)

var benchSizes = []int{16, 64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 2 << 20, 4 << 20}

func main() {
	net := flag.String("net", "eth", "network side of the paper: eth (gcc 4.8.5) or ib (MVAPICH toolchain)")
	real := flag.Bool("real", false, "measure the real Go AEAD backends instead of printing model curves")
	keyBits := flag.Int("key", 256, "AES key length (128 or 256)")
	stats := flag.Bool("stats", false, "with -real: print crypto accounting (counts, bytes, latency) after the sweep")
	statsFmt := flag.String("statsfmt", "text", "metrics format: text, json, or prom")
	flag.Parse()

	if *real {
		if err := measureReal(*keyBits, *stats, *statsFmt); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *stats {
		fmt.Fprintln(os.Stderr, "note: -stats accounts real seal/open work; combine it with -real")
	}

	variant := encmpi.GCC485
	if *net == "ib" {
		variant = encmpi.MVAPICH
	}
	tb := encmpi.NewTable(
		fmt.Sprintf("AES-GCM-%d enc-dec throughput (MB/s), %s toolchain (model curves)", *keyBits, variant),
		append([]string{"Size"}, encmpi.Libraries()...)...)
	for _, s := range benchSizes {
		row := []string{sizeLabel(s)}
		for _, lib := range encmpi.Libraries() {
			p, err := encmpi.LookupLibrary(lib, variant, *keyBits)
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			row = append(row, encmpi.MBps(p.Curve.ThroughputMBps(s)))
		}
		tb.Add(row...)
	}
	fmt.Print(tb)
}

// measureReal times the actual Go codecs, paper-style: the metric is
// size / (t_enc + t_dec), at least 5 repetitions, stddev within 5% of mean.
func measureReal(keyBits int, stats bool, statsFmt string) error {
	key := bytes.Repeat([]byte{0x42}, keyBits/8)
	tb := encmpi.NewTable(
		fmt.Sprintf("Measured enc-dec throughput (MB/s) of the Go AEAD tiers, AES-%d, this host", keyBits),
		append([]string{"Size"}, encmpi.GCMCodecNames()...)...)

	// With -stats every timed seal/open is also charged to a one-rank
	// registry, giving counts, byte totals, and latency histograms.
	var rk *encmpi.RankMetrics
	var reg *encmpi.Registry
	if stats {
		reg = encmpi.NewRegistry(1)
		rk = reg.Rank(0)
	}

	for _, size := range benchSizes {
		row := []string{sizeLabel(size)}
		pt := make([]byte, size)
		for _, name := range encmpi.GCMCodecNames() {
			codec, err := encmpi.NewCodec(name, key)
			if err != nil {
				return err
			}
			nonce := make([]byte, encmpi.NonceSize)
			ct := codec.Seal(nil, nonce, pt)
			out := make([]byte, 0, size)

			// Pick an inner-loop count that costs ~20ms per measurement.
			iters := 1
			start := time.Now()
			ct = codec.Seal(ct[:0], nonce, pt)
			if _, err := codec.Open(out[:0], nonce, ct); err != nil {
				return err
			}
			per := time.Since(start)
			if per > 0 {
				iters = int(20*time.Millisecond/per) + 1
			}

			sample, err := encmpi.AdaptiveRun(encmpi.EncDefaults(), func() float64 {
				t0 := time.Now()
				for i := 0; i < iters; i++ {
					ct = codec.Seal(ct[:0], nonce, pt)
					if _, err := codec.Open(out[:0], nonce, ct); err != nil {
						panic(err)
					}
				}
				elapsed := time.Since(t0).Seconds() / float64(iters)
				if rk != nil {
					// One enc+dec pair per iteration; split the measured
					// time evenly between the two directions.
					half := int64(time.Duration(elapsed*float64(time.Second)) / 2)
					rk.Seal(size, len(ct), half)
					rk.Open(len(ct), size, half)
				}
				return float64(size) / elapsed / 1e6 // MB/s for one enc+dec
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "warning: %s @%d: %v\n", name, size, err)
			}
			row = append(row, encmpi.MBps(sample.Mean))
		}
		tb.Add(row...)
	}
	tb.Note("metric matches the paper's Fig 2: size/(t_enc+t_dec); 5%% stddev stopping rule")
	// With a machine metrics format, stdout carries only the snapshot so it
	// can be piped straight into a parser; the table moves to stderr.
	machine := reg != nil && statsFmt != "text" && statsFmt != ""
	human := os.Stdout
	if machine {
		human = os.Stderr
	}
	fmt.Fprint(human, tb)

	if reg != nil {
		if !machine {
			fmt.Println()
		}
		if err := encmpi.WriteSnapshot(os.Stdout, reg.Snapshot(), statsFmt); err != nil {
			return err
		}
	}
	return nil
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
