// Command encbench is the encryption-decryption benchmark (paper Figs. 2
// and 9). By default it prints the calibrated library curves used by the
// simulator; with -real it measures the repository's actual Go AEAD tiers on
// the host CPU using the paper's methodology (repeated enc+dec of each
// buffer size until the standard deviation is within 5% of the mean).
//
// With -par it benchmarks the chunked parallel engine instead: the shared
// persistent crypto worker pool against the legacy per-call goroutine
// fan-out, for one large message (chunk parallelism) and for many
// concurrent small messages (cross-message parallelism).
//
//	encbench [-net eth|ib] [-real] [-key 128|256]
//	         [-par] [-workers N]
//	         [-stats] [-statsfmt text|json|prom]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"encmpi"
)

var benchSizes = []int{16, 64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 2 << 20, 4 << 20}

func main() {
	net := flag.String("net", "eth", "network side of the paper: eth (gcc 4.8.5) or ib (MVAPICH toolchain)")
	real := flag.Bool("real", false, "measure the real Go AEAD backends instead of printing model curves")
	keyBits := flag.Int("key", 256, "AES key length (128 or 256)")
	par := flag.Bool("par", false, "benchmark the parallel engine: shared worker pool vs per-call goroutine fan-out")
	workers := flag.Int("workers", 0, "with -par: worker count (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "with -real: print crypto accounting (counts, bytes, latency) after the sweep")
	statsFmt := flag.String("statsfmt", "text", "metrics format: text, json, or prom")
	flag.Parse()

	if *par {
		if err := measureParallel(*keyBits, *workers); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *real {
		if err := measureReal(*keyBits, *stats, *statsFmt); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *stats {
		fmt.Fprintln(os.Stderr, "note: -stats accounts real seal/open work; combine it with -real")
	}

	variant := encmpi.GCC485
	if *net == "ib" {
		variant = encmpi.MVAPICH
	}
	tb := encmpi.NewTable(
		fmt.Sprintf("AES-GCM-%d enc-dec throughput (MB/s), %s toolchain (model curves)", *keyBits, variant),
		append([]string{"Size"}, encmpi.Libraries()...)...)
	for _, s := range benchSizes {
		row := []string{sizeLabel(s)}
		for _, lib := range encmpi.Libraries() {
			p, err := encmpi.LookupLibrary(lib, variant, *keyBits)
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			row = append(row, encmpi.MBps(p.Curve.ThroughputMBps(s)))
		}
		tb.Add(row...)
	}
	fmt.Print(tb)
}

// measureReal times the actual Go codecs, paper-style: the metric is
// size / (t_enc + t_dec), at least 5 repetitions, stddev within 5% of mean.
func measureReal(keyBits int, stats bool, statsFmt string) error {
	key := bytes.Repeat([]byte{0x42}, keyBits/8)
	tb := encmpi.NewTable(
		fmt.Sprintf("Measured enc-dec throughput (MB/s) of the Go AEAD tiers, AES-%d, this host", keyBits),
		append([]string{"Size"}, encmpi.GCMCodecNames()...)...)

	// With -stats every timed seal/open is also charged to a one-rank
	// registry, giving counts, byte totals, and latency histograms.
	var rk *encmpi.RankMetrics
	var reg *encmpi.Registry
	if stats {
		reg = encmpi.NewRegistry(1)
		rk = reg.Rank(0)
	}

	for _, size := range benchSizes {
		row := []string{sizeLabel(size)}
		pt := make([]byte, size)
		for _, name := range encmpi.GCMCodecNames() {
			codec, err := encmpi.NewCodec(name, key)
			if err != nil {
				return err
			}
			nonce := make([]byte, encmpi.NonceSize)
			ct := codec.Seal(nil, nonce, pt)
			out := make([]byte, 0, size)

			// Pick an inner-loop count that costs ~20ms per measurement.
			iters := 1
			start := time.Now()
			ct = codec.Seal(ct[:0], nonce, pt)
			if _, err := codec.Open(out[:0], nonce, ct); err != nil {
				return err
			}
			per := time.Since(start)
			if per > 0 {
				iters = int(20*time.Millisecond/per) + 1
			}

			sample, err := encmpi.AdaptiveRun(encmpi.EncDefaults(), func() float64 {
				t0 := time.Now()
				for i := 0; i < iters; i++ {
					ct = codec.Seal(ct[:0], nonce, pt)
					if _, err := codec.Open(out[:0], nonce, ct); err != nil {
						panic(err)
					}
				}
				elapsed := time.Since(t0).Seconds() / float64(iters)
				if rk != nil {
					// One enc+dec pair per iteration; split the measured
					// time evenly between the two directions.
					half := int64(time.Duration(elapsed*float64(time.Second)) / 2)
					rk.Seal(size, len(ct), half)
					rk.Open(len(ct), size, half)
				}
				return float64(size) / elapsed / 1e6 // MB/s for one enc+dec
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "warning: %s @%d: %v\n", name, size, err)
			}
			row = append(row, encmpi.MBps(sample.Mean))
		}
		tb.Add(row...)
	}
	tb.Note("metric matches the paper's Fig 2: size/(t_enc+t_dec); 5%% stddev stopping rule")
	// With a machine metrics format, stdout carries only the snapshot so it
	// can be piped straight into a parser; the table moves to stderr.
	machine := reg != nil && statsFmt != "text" && statsFmt != ""
	human := os.Stdout
	if machine {
		human = os.Stderr
	}
	fmt.Fprint(human, tb)

	if reg != nil {
		if !machine {
			fmt.Println()
		}
		if err := encmpi.WriteSnapshot(os.Stdout, reg.Snapshot(), statsFmt); err != nil {
			return err
		}
	}
	return nil
}

// measureParallel compares the parallel engine's two dispatch strategies:
// the persistent shared worker pool (production) against the legacy
// per-call goroutine fan-out (SpawnPerCall baseline). The single-message
// rows show chunk-level parallelism on one large buffer; the final row
// shows aggregate throughput of 16 goroutines each sealing and opening
// independent 4 KiB messages — the concurrent-small-message regime the
// shared pool exists for.
func measureParallel(keyBits, workers int) error {
	key := bytes.Repeat([]byte{0x42}, keyBits/8)
	mk := func(spawnPerCall bool) (encmpi.Engine, error) {
		return encmpi.NewEngine(encmpi.EngineSpec{
			Kind: "parallel", Codec: "aesstd", Key: key,
			Workers: workers, SpawnPerCall: spawnPerCall,
		})
	}
	tb := encmpi.NewTable(
		fmt.Sprintf("Parallel AES-GCM-%d engine: seal+open throughput (MB/s), worker pool vs per-call goroutines", keyBits),
		"Workload", "Pooled", "PerCall", "Gain")

	throughput := func(eng encmpi.Engine, size, conc int) (float64, error) {
		var payload []byte
		if size > 0 {
			payload = bytes.Repeat([]byte{0xAB}, size)
		}
		sample, err := encmpi.AdaptiveRun(encmpi.EncDefaults(), func() float64 {
			const itersPer = 8
			start := time.Now()
			var wg sync.WaitGroup
			for g := 0; g < conc; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < itersPer; i++ {
						wire := eng.Seal(nil, encmpi.Bytes(payload))
						plain, err := eng.Open(nil, wire)
						if err != nil {
							panic(err)
						}
						plain.Release()
						wire.Release()
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start).Seconds()
			return float64(size) * itersPer * float64(conc) / elapsed / 1e6
		})
		return sample.Mean, err
	}

	type workload struct {
		label string
		size  int
		conc  int
	}
	cases := []workload{
		{"256KB x1", 256 << 10, 1},
		{"1MB x1", 1 << 20, 1},
		{"4MB x1", 4 << 20, 1},
		{"4KB x16 concurrent", 4 << 10, 16},
	}
	for _, w := range cases {
		pooledEng, err := mk(false)
		if err != nil {
			return err
		}
		spawnEng, err := mk(true)
		if err != nil {
			return err
		}
		pooled, err := throughput(pooledEng, w.size, w.conc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: %s pooled: %v\n", w.label, err)
		}
		spawn, err := throughput(spawnEng, w.size, w.conc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: %s percall: %v\n", w.label, err)
		}
		gain := "n/a"
		if spawn > 0 {
			gain = encmpi.Pct(pooled/spawn - 1)
		}
		tb.Add(w.label, encmpi.MBps(pooled), encmpi.MBps(spawn), gain)
	}
	tb.Note("pooled = persistent shared cryptopool; percall = legacy goroutine-per-chunk fan-out")
	fmt.Print(tb)
	return nil
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
