// Command benchjson emits the repository's machine-readable performance
// snapshot (committed as BENCH_PR10.json): seal/open ns/op, MB/s, and
// allocs/op for the sequential and chunked-parallel engines across message
// sizes, aggregate throughput of 16 concurrent 4 KiB messages through the
// shared crypto worker pool versus the per-call goroutine baseline, an
// in-process encrypted ping-pong, simulated collective latencies including
// the segmented pipelined broadcast against plain Bcast, the multi-pair
// TCP bandwidth suite comparing the asynchronous batched wire engine
// against the synchronous write-under-mutex baseline (WithWireBatching),
// and the chunked-rendezvous p2p suite comparing unencrypted, serialized
// encrypted, and overlap-chunked encrypted 1 MiB transfers over real TCP
// and the simulated 40 G InfiniBand fabric (DESIGN.md §12), plus the
// session_overhead suite pricing the context-AAD binding of sessions
// (DESIGN.md §13) against the legacy nonce-only engine, and the shm_ring
// suite comparing the zero-copy slot-ring shm path against the seed's
// inline-copy delivery across eager message sizes (DESIGN.md §14), and the
// hier_coll suite comparing flat against topology-aware two-level
// collectives at p ∈ {64, 256, 1024} across the Ethernet, contended
// Ethernet, and InfiniBand presets with per-fabric crossover points
// (DESIGN.md §15), and the hear_allreduce suite comparing the
// additive-noise allreduce against the AEAD reduce-then-seal and
// hierarchical-AEAD comparators at 4 KiB–4 MiB and p ∈ {64, 256, 1024}
// (DESIGN.md §16).
//
// It uses its own fixed-duration timing loops rather than testing.B so the
// -quick mode can bound the total runtime for CI smoke use:
//
//	benchjson [-quick] [-o BENCH_PR10.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"encmpi"
)

type sealOpenEntry struct {
	Engine     string  `json:"engine"`
	Size       int     `json:"size"`
	SealNsOp   float64 `json:"seal_ns_op"`
	SealMBps   float64 `json:"seal_mb_s"`
	SealAllocs float64 `json:"seal_allocs_op"`
	OpenNsOp   float64 `json:"open_ns_op"`
	OpenMBps   float64 `json:"open_mb_s"`
	OpenAllocs float64 `json:"open_allocs_op"`
}

type concurrentEntry struct {
	Size       int     `json:"size"`
	Goroutines int     `json:"goroutines"`
	PooledMBps float64 `json:"pooled_mb_s"`
	SpawnMBps  float64 `json:"percall_mb_s"`
	GainPct    float64 `json:"gain_pct"`
}

type pingPongEntry struct {
	Transport string  `json:"transport"`
	Size      int     `json:"size"`
	OneWayUs  float64 `json:"one_way_us"`
	MBps      float64 `json:"mb_s"`
}

type collectiveEntry struct {
	Op      string  `json:"op"`
	Ranks   int     `json:"ranks"`
	Nodes   int     `json:"nodes"`
	Size    int     `json:"size"`
	MeanUs  float64 `json:"mean_us"`
	Library string  `json:"library"`
}

type hierCollEntry struct {
	Net      string  `json:"net"`
	Op       string  `json:"op"`
	Ranks    int     `json:"ranks"`
	Nodes    int     `json:"nodes"`
	Size     int     `json:"size"`
	FlatUs   float64 `json:"flat_us"`
	HierUs   float64 `json:"hier_us"`
	SpeedupX float64 `json:"speedup_x"`
	Library  string  `json:"library"`
}

type hierCrossoverEntry struct {
	Net string `json:"net"`
	Op  string `json:"op"`
	// CrossoverRanks is the smallest measured rank count at which the
	// hierarchical algorithm beats the flat one on this fabric; 0 means it
	// never did within the sweep.
	CrossoverRanks int `json:"crossover_ranks"`
}

type bcastPipeEntry struct {
	Ranks          int     `json:"ranks"`
	Nodes          int     `json:"nodes"`
	Size           int     `json:"size"`
	BcastUs        float64 `json:"bcast_us"`
	BcastPipeUs    float64 `json:"bcastpipe_us"`
	ImprovementPct float64 `json:"improvement_pct"`
	Library        string  `json:"library"`
}

type multiPairEntry struct {
	Pairs       int     `json:"pairs"`
	Size        int     `json:"size"`
	MsgsPerPair int     `json:"msgs_per_pair"`
	BatchedMBps float64 `json:"batched_mb_s"`
	SyncMBps    float64 `json:"sync_mb_s"`
	GainPct     float64 `json:"gain_pct"`
	Flushes     uint64  `json:"batched_flushes"`
	Frames      uint64  `json:"batched_frames"`
	MeanBatch   float64 `json:"batched_mean_batch_frames"`
}

type chunkedP2PEntry struct {
	Transport string `json:"transport"`
	Size      int    `json:"size"`
	Msgs      int    `json:"msgs"`
	Engine    string `json:"engine"`
	// PlainMBps is the unencrypted baseline; SerialMBps seals each message
	// whole before the rendezvous (the paper's implementation); ChunkedMBps
	// is the transparent chunked overlap path.
	PlainMBps   float64 `json:"plain_mb_s"`
	SerialMBps  float64 `json:"serial_mb_s"`
	ChunkedMBps float64 `json:"chunked_mb_s"`
	// OverheadVsPlainPct is how far the chunked path trails the unencrypted
	// wire (the acceptance target is ≈10% or less); GainVsSerialPct is what
	// the overlap buys over sealing whole messages.
	OverheadVsPlainPct float64 `json:"chunked_overhead_vs_plain_pct"`
	GainVsSerialPct    float64 `json:"chunked_gain_vs_serial_pct"`
}

type sessionOverheadEntry struct {
	Size int `json:"size"`
	// LegacyNsOp seals+opens one message with the PR 1 RealEngine (no AAD);
	// SessionNsOp does the same through a session engine, which additionally
	// derives the 45-byte context AAD and runs the replay-window admit. The
	// acceptance target for the binding is ≤2% at 256 KiB.
	LegacyNsOp  float64 `json:"legacy_sealopen_ns_op"`
	SessionNsOp float64 `json:"session_sealopen_ns_op"`
	OverheadPct float64 `json:"overhead_pct"`
}

type shmRingEntry struct {
	Size  int `json:"size"`
	Iters int `json:"iters"`
	// RingMBps is one-way ping-pong bandwidth with the slot ring enabled
	// (engines seal into and open out of the shared slab in place);
	// InlineMBps is the same exchange with WithShmRing(-1, 0) — the seed's
	// pool-copy delivery.
	RingMBps   float64 `json:"ring_mb_s"`
	InlineMBps float64 `json:"inline_mb_s"`
	GainPct    float64 `json:"gain_pct"`
	// Counters from one instrumented ring run: every message must seal and
	// open in place, with zero spills to the pool fallback.
	SealsInPlace uint64 `json:"ring_seals_in_place"`
	OpensInPlace uint64 `json:"ring_opens_in_place"`
	Fallbacks    uint64 `json:"ring_fallbacks"`
}

type hearAllreduceEntry struct {
	Net   string `json:"net"`
	Ranks int    `json:"ranks"`
	Nodes int    `json:"nodes"`
	Size  int    `json:"size"`
	// HearUs is the additive-noise engine's production path: a persistent
	// AllreduceInit plan (key ceremony paid once at init), hierarchical on
	// these multi-node shapes — each rank masks once, the masked partials
	// reduce through shared memory and cross the network once per node with
	// no per-hop crypto, and every rank unmasks once (DESIGN.md §16).
	// HearFlatUs is the same algebra on the flat recursive-doubling
	// schedule, included so the topology factor is visible separately from
	// the sealing factor. SealedUs is the AEAD reduce-then-seal comparator
	// (every hop seals its payload and opens its partner's before combining
	// plaintext); HierAeadUs is the topology-aware AEAD allreduce
	// (intra-node plaintext aggregation, one sealed flow per node leader) —
	// the strongest AEAD baseline, so SpeedupVsHierAeadX isolates what
	// removing per-hop seal/open buys at equal topology awareness.
	HearUs             float64 `json:"hear_us"`
	HearFlatUs         float64 `json:"hear_flat_us"`
	SealedUs           float64 `json:"sealed_us"`
	HierAeadUs         float64 `json:"hier_aead_us"`
	SpeedupVsSealedX   float64 `json:"speedup_vs_sealed_x"`
	SpeedupVsHierAeadX float64 `json:"speedup_vs_hier_aead_x"`
	Library            string  `json:"library"`
}

type report struct {
	Schema        string                 `json:"schema"`
	GeneratedBy   string                 `json:"generated_by"`
	Quick         bool                   `json:"quick"`
	GoMaxProcs    int                    `json:"gomaxprocs"`
	SealOpen      []sealOpenEntry        `json:"seal_open"`
	Concurrent    concurrentEntry        `json:"concurrent_small"`
	PingPong      pingPongEntry          `json:"pingpong_shm"`
	Collectives   []collectiveEntry      `json:"collectives_sim"`
	HierColl      []hierCollEntry        `json:"hier_coll"`
	HierCrossover []hierCrossoverEntry   `json:"hier_coll_crossover"`
	BcastPipeline bcastPipeEntry         `json:"bcast_pipelined_sim"`
	MultiPairTCP  []multiPairEntry       `json:"multipair_tcp"`
	ChunkedP2P    []chunkedP2PEntry      `json:"chunked_p2p"`
	SessionCost   []sessionOverheadEntry `json:"session_overhead"`
	ShmRing       []shmRingEntry         `json:"shm_ring"`
	HearAllreduce []hearAllreduceEntry   `json:"hear_allreduce"`
}

func main() {
	quick := flag.Bool("quick", false, "short measurement loops for CI smoke use")
	out := flag.String("o", "BENCH_PR10.json", "output path ('-' for stdout)")
	flag.Parse()

	rep := report{
		Schema:      "encmpi-bench/1",
		GeneratedBy: "cmd/benchjson",
		Quick:       *quick,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	budget := 20 * time.Millisecond
	if *quick {
		budget = 2 * time.Millisecond
	}

	key := bytes.Repeat([]byte{0x42}, 32)
	mkEngine := func(kind string, spawn bool) encmpi.Engine {
		e, err := encmpi.NewEngine(encmpi.EngineSpec{
			Kind: kind, Codec: "aesstd", Key: key, SpawnPerCall: spawn,
		})
		if err != nil {
			log.Fatal(err)
		}
		return e
	}

	sizes := []int{1 << 10, 4 << 10, 64 << 10, 256 << 10, 1 << 20}
	if *quick {
		sizes = []int{4 << 10, 256 << 10}
	}
	engines := []struct {
		name  string
		kind  string
		spawn bool
	}{
		{"real-aesstd", "real", false},
		{"parallel-pooled", "parallel", false},
		{"parallel-percall", "parallel", true},
	}
	for _, eng := range engines {
		for _, size := range sizes {
			e := mkEngine(eng.kind, eng.spawn)
			rep.SealOpen = append(rep.SealOpen, measureSealOpen(eng.name, e, size, budget))
		}
	}

	rep.Concurrent = measureConcurrent(mkEngine, budget)
	rep.PingPong = measurePingPong(key, *quick)
	rep.Collectives, rep.BcastPipeline = measureCollectives(*quick)
	rep.HierColl, rep.HierCrossover = measureHierColl(*quick)
	rep.MultiPairTCP = measureMultiPair(*quick)
	rep.ChunkedP2P = measureChunkedP2P(key, *quick)
	rep.SessionCost = measureSessionOverhead(key, *quick)
	rep.ShmRing = measureShmRing(key, *quick)
	rep.HearAllreduce = measureHearAllreduce(key, *quick)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(blob))
}

// timeOp runs fn in a calibrated loop for roughly `budget` and returns
// ns/op.
func timeOp(budget time.Duration, fn func()) float64 {
	start := time.Now()
	fn()
	per := time.Since(start)
	iters := 1
	if per > 0 && per < budget {
		iters = int(budget/per) + 1
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

func measureSealOpen(name string, e encmpi.Engine, size int, budget time.Duration) sealOpenEntry {
	payload := encmpi.Bytes(bytes.Repeat([]byte{0xAB}, size))
	entry := sealOpenEntry{Engine: name, Size: size}

	entry.SealNsOp = timeOp(budget, func() {
		w := e.Seal(nil, payload)
		w.Release()
	})
	entry.SealMBps = float64(size) / entry.SealNsOp * 1e3
	entry.SealAllocs = testing.AllocsPerRun(10, func() {
		w := e.Seal(nil, payload)
		w.Release()
	})

	wire := e.Seal(nil, payload)
	entry.OpenNsOp = timeOp(budget, func() {
		p, err := e.Open(nil, wire)
		if err != nil {
			log.Fatalf("%s @%d: %v", name, size, err)
		}
		p.Release()
	})
	entry.OpenMBps = float64(size) / entry.OpenNsOp * 1e3
	entry.OpenAllocs = testing.AllocsPerRun(10, func() {
		p, err := e.Open(nil, wire)
		if err != nil {
			log.Fatalf("%s @%d: %v", name, size, err)
		}
		p.Release()
	})
	wire.Release()
	return entry
}

// measureConcurrent reports aggregate seal+open throughput of 16 goroutines
// each working independent 4 KiB messages — the concurrent-small-message
// regime the shared pool exists for — under both dispatch strategies.
func measureConcurrent(mk func(kind string, spawn bool) encmpi.Engine, budget time.Duration) concurrentEntry {
	const size = 4 << 10
	const conc = 16
	payload := bytes.Repeat([]byte{0xAB}, size)
	aggregate := func(e encmpi.Engine) float64 {
		nsPerRound := timeOp(budget*4, func() {
			var wg sync.WaitGroup
			for g := 0; g < conc; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 8; i++ {
						w := e.Seal(nil, encmpi.Bytes(payload))
						p, err := e.Open(nil, w)
						if err != nil {
							log.Fatal(err)
						}
						p.Release()
						w.Release()
					}
				}()
			}
			wg.Wait()
		})
		return float64(size) * 8 * conc / nsPerRound * 1e3 // MB/s
	}
	pooled := aggregate(mk("parallel", false))
	spawn := aggregate(mk("parallel", true))
	entry := concurrentEntry{Size: size, Goroutines: conc, PooledMBps: pooled, SpawnMBps: spawn}
	if spawn > 0 {
		entry.GainPct = (pooled/spawn - 1) * 100
	}
	return entry
}

// measurePingPong times a blocking encrypted ping-pong over the in-process
// transport (real crypto, real clock).
func measurePingPong(key []byte, quick bool) pingPongEntry {
	const size = 64 << 10
	iters := 200
	if quick {
		iters = 20
	}
	payload := bytes.Repeat([]byte{0xCD}, size)
	var oneWay time.Duration
	err := encmpi.RunShm(2, func(c *encmpi.Comm) {
		sess, err := encmpi.NewSession(key)
		if err != nil {
			panic(err)
		}
		e, err := sess.Attach(c)
		if err != nil {
			panic(err)
		}
		peer := 1 - c.Rank()
		buf := encmpi.Bytes(payload)
		roundTrip := func() {
			if c.Rank() == 0 {
				e.Send(peer, 0, buf)
				if _, _, err := e.Recv(peer, 0); err != nil {
					panic(err)
				}
			} else {
				if _, _, err := e.Recv(peer, 0); err != nil {
					panic(err)
				}
				e.Send(peer, 0, buf)
			}
		}
		roundTrip() // warm-up
		start := time.Now()
		for i := 0; i < iters; i++ {
			roundTrip()
		}
		if c.Rank() == 0 {
			oneWay = time.Since(start) / time.Duration(2*iters)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	entry := pingPongEntry{Transport: "shm", Size: size, OneWayUs: oneWay.Seconds() * 1e6}
	if oneWay > 0 {
		entry.MBps = float64(size) / oneWay.Seconds() / 1e6
	}
	return entry
}

// measureCollectives runs the simulated collective latencies (virtual time;
// the numbers are deterministic modulo the calibration curves) and the
// BcastPipelined-vs-Bcast comparison.
func measureCollectives(quick bool) ([]collectiveEntry, bcastPipeEntry) {
	ranks, nodes, iters := 64, 8, 10
	if quick {
		ranks, nodes, iters = 16, 4, 2
	}
	model, err := encmpi.LibraryModel("boringssl", "gcc485", 256)
	if err != nil {
		log.Fatal(err)
	}
	mk := func(int) encmpi.Engine { return model }

	var colls []collectiveEntry
	for _, op := range []encmpi.CollectiveOp{encmpi.OpBcast, encmpi.OpAlltoall} {
		res, err := encmpi.Collective(encmpi.Eth10G(), mk, op, ranks, nodes, 16<<10, iters)
		if err != nil {
			log.Fatal(err)
		}
		colls = append(colls, collectiveEntry{
			Op: string(op), Ranks: ranks, Nodes: nodes, Size: 16 << 10,
			MeanUs: res.MeanLat.Seconds() * 1e6, Library: "boringssl/gcc485",
		})
	}

	// The pipelined-broadcast ablation: slow crypto (CryptoPP class) on the
	// fast fabric is where crypto/wire overlap pays.
	slow, err := encmpi.LibraryModel("cryptopp", "mvapich", 256)
	if err != nil {
		log.Fatal(err)
	}
	mkSlow := func(int) encmpi.Engine { return slow }
	const pipeSize = 1 << 20
	pipeRanks, pipeNodes := 8, 2
	pipeIters := 5
	if quick {
		pipeIters = 2
	}
	var lat [2]time.Duration
	for i, op := range []encmpi.CollectiveOp{encmpi.OpBcast, encmpi.OpBcastPipelined} {
		res, err := encmpi.Collective(encmpi.IB40G(), mkSlow, op, pipeRanks, pipeNodes, pipeSize, pipeIters)
		if err != nil {
			log.Fatal(err)
		}
		lat[i] = res.MeanLat
	}
	pipe := bcastPipeEntry{
		Ranks: pipeRanks, Nodes: pipeNodes, Size: pipeSize,
		BcastUs:     lat[0].Seconds() * 1e6,
		BcastPipeUs: lat[1].Seconds() * 1e6,
		Library:     "cryptopp/mvapich",
	}
	if lat[0] > 0 {
		pipe.ImprovementPct = (1 - lat[1].Seconds()/lat[0].Seconds()) * 100
	}
	return colls, pipe
}

// measureHierColl is the hier_coll suite (DESIGN.md §15): flat versus
// topology-aware two-level collectives at p ∈ {64, 256, 1024} on the
// paper testbed shape (8 ranks per node), across the calibrated Ethernet
// fabric, its contention-knee variant, and InfiniBand, all under the
// BoringSSL cost model. Alltoall stops at 256 ranks — the flat exchange is
// p×(p−1) messages and exists below the crossover to make the crossover
// itself visible. The crossover table reports, per (fabric, op), the
// smallest rank count where the hierarchical algorithm wins.
func measureHierColl(quick bool) ([]hierCollEntry, []hierCrossoverEntry) {
	model, err := encmpi.LibraryModel("boringssl", "gcc485", 256)
	if err != nil {
		log.Fatal(err)
	}
	mk := func(int) encmpi.Engine { return model }

	nets := []struct {
		name string
		cfg  encmpi.NetConfig
	}{
		{"eth10g", encmpi.Eth10G()},
		{"eth10g-contended", encmpi.Eth10GContended()},
		{"ib40g", encmpi.IB40G()},
	}
	type shape struct{ ranks, nodes int }
	shapes := []shape{{64, 8}, {256, 32}, {1024, 128}}
	if quick {
		shapes = shapes[:1]
	}
	pairs := []struct {
		name      string
		flat, hct encmpi.CollectiveOp
		// size maps rank count to message size: bandwidth-bound payloads
		// for bcast/allreduce, small blocks for the p²-volume exchanges.
		size     func(ranks int) int
		maxRanks int
	}{
		{"bcast", encmpi.OpBcast, encmpi.OpHierBcast, func(int) int { return 256 << 10 }, 1024},
		{"allreduce", encmpi.OpAllreduce, encmpi.OpHierAllreduce, func(int) int { return 64 << 10 }, 1024},
		{"allgather", encmpi.OpAllgather, encmpi.OpHierAllgather, func(ranks int) int {
			if ranks >= 1024 {
				return 256
			}
			return 1 << 10
		}, 1024},
		{"alltoall", encmpi.OpAlltoall, encmpi.OpHierAlltoall, func(int) int { return 512 }, 256},
	}

	var entries []hierCollEntry
	var crossovers []hierCrossoverEntry
	for _, net := range nets {
		for _, pr := range pairs {
			crossover := 0
			for _, sh := range shapes {
				if sh.ranks > pr.maxRanks {
					continue
				}
				iters := 4
				if quick || sh.ranks >= 1024 {
					iters = 2
				}
				size := pr.size(sh.ranks)
				var lat [2]time.Duration
				for i, op := range []encmpi.CollectiveOp{pr.flat, pr.hct} {
					res, err := encmpi.Collective(net.cfg, mk, op, sh.ranks, sh.nodes, size, iters)
					if err != nil {
						log.Fatal(err)
					}
					lat[i] = res.MeanLat
				}
				e := hierCollEntry{
					Net: net.name, Op: pr.name, Ranks: sh.ranks, Nodes: sh.nodes, Size: size,
					FlatUs: lat[0].Seconds() * 1e6, HierUs: lat[1].Seconds() * 1e6,
					Library: "boringssl/gcc485",
				}
				if lat[1] > 0 {
					e.SpeedupX = lat[0].Seconds() / lat[1].Seconds()
				}
				if e.SpeedupX > 1 && crossover == 0 {
					crossover = sh.ranks
				}
				entries = append(entries, e)
			}
			crossovers = append(crossovers, hierCrossoverEntry{Net: net.name, Op: pr.name, CrossoverRanks: crossover})
		}
	}
	return entries, crossovers
}

// runMultiPair times one multi-pair run: `pairs` disjoint sender→receiver
// rank pairs each pushing msgs messages of the given size concurrently over
// real TCP sockets. It returns the aggregate payload bandwidth in MB/s,
// measured between two barriers so mesh setup is excluded.
func runMultiPair(pairs, size, msgs int, batched bool, reg *encmpi.Registry) float64 {
	payload := bytes.Repeat([]byte{0xEE}, size)
	var elapsed time.Duration
	err := encmpi.RunTCP(2*pairs, func(c *encmpi.Comm) {
		c.Barrier()
		start := time.Now()
		if c.Rank()%2 == 0 {
			peer := c.Rank() + 1
			reqs := make([]*encmpi.Request, msgs)
			for i := range reqs {
				reqs[i] = c.Isend(peer, 0, encmpi.Bytes(payload))
			}
			if err := c.Waitall(reqs); err != nil {
				log.Fatal(err)
			}
		} else {
			peer := c.Rank() - 1
			for i := 0; i < msgs; i++ {
				buf, _ := c.Recv(peer, 0)
				buf.Release()
			}
		}
		c.Barrier()
		if c.Rank() == 0 {
			elapsed = time.Since(start)
		}
	}, encmpi.WithWireBatching(batched), encmpi.WithMetrics(reg))
	if err != nil {
		log.Fatal(err)
	}
	totalBytes := float64(pairs) * float64(msgs) * float64(size)
	return totalBytes / elapsed.Seconds() / 1e6
}

// measureMultiPair is the wire-engine A/B suite: aggregate bandwidth of
// several concurrent rank pairs, batched versus SyncWrites, across the
// regimes the engine was built for (small eager messages, where syscall
// coalescing pays) and the ones it must not hurt (large rendezvous
// payloads). The batched column also reports the engine's own accounting —
// flush count and mean frames per flush — as direct evidence the win comes
// from coalescing, not noise.
func measureMultiPair(quick bool) []multiPairEntry {
	pairs := 4
	sizes := []int{1 << 10, 4 << 10, 256 << 10, 1 << 20}
	rounds := 6
	if quick {
		pairs = 2
		sizes = []int{1 << 10, 256 << 10}
		rounds = 1
	}
	var out []multiPairEntry
	for _, size := range sizes {
		msgs := 512
		if size > 64<<10 {
			msgs = 48 // rendezvous regime: fewer, larger transfers
		}
		if quick {
			msgs /= 8
		}
		// The two modes are sampled in interleaved A/B/B/A rounds and scored
		// best-of: machine speed on a shared box drifts by tens of percent
		// between invocations, so back-to-back blocks per mode would measure
		// the drift, not the engine, while the max over interleaved samples
		// converges on each mode's capability under the same conditions.
		// Timed runs carry no metrics registry — accounting must not tax one
		// side — so the coalescing evidence (flush count, mean batch) comes
		// from one separate instrumented run after the timing.
		e := multiPairEntry{Pairs: pairs, Size: size, MsgsPerPair: msgs}
		keep := func(dst *float64, batched bool) {
			if v := runMultiPair(pairs, size, msgs, batched, nil); v > *dst {
				*dst = v
			}
		}
		for i := 0; i < rounds; i++ {
			keep(&e.BatchedMBps, true)
			keep(&e.SyncMBps, false)
			keep(&e.SyncMBps, false)
			keep(&e.BatchedMBps, true)
		}
		if e.SyncMBps > 0 {
			e.GainPct = (e.BatchedMBps/e.SyncMBps - 1) * 100
		}
		reg := encmpi.NewRegistry(2 * pairs)
		runMultiPair(pairs, size, msgs, true, reg)
		wire := reg.Snapshot().Wire
		e.Flushes, e.Frames = wire.Flushes, wire.Frames
		if wire.Flushes > 0 {
			e.MeanBatch = float64(wire.Frames) / float64(wire.Flushes)
		}
		out = append(out, e)
	}
	return out
}

// runChunkedTCP times one unidirectional 1 MiB stream over real TCP under
// one crypto mode, returning payload MB/s.
func runChunkedTCP(key []byte, size, msgs int, mode string) float64 {
	payload := bytes.Repeat([]byte{0xBE}, size)
	var elapsed time.Duration
	err := encmpi.RunTCP(2, func(c *encmpi.Comm) {
		var e *encmpi.EncryptedComm
		switch mode {
		case "plain":
			e = encmpi.EncryptWith(c, encmpi.Unencrypted(), encmpi.WithPipelineThreshold(-1))
		case "serial":
			sess, err := encmpi.NewSession(key)
			if err != nil {
				log.Fatal(err)
			}
			e, err = sess.Attach(c, encmpi.WithPipelineThreshold(-1))
			if err != nil {
				log.Fatal(err)
			}
		case "chunked":
			sess, err := encmpi.NewSession(key)
			if err != nil {
				log.Fatal(err)
			}
			e, err = sess.Attach(c)
			if err != nil {
				log.Fatal(err)
			}
		}
		c.Barrier()
		start := time.Now()
		switch c.Rank() {
		case 0:
			for i := 0; i < msgs; i++ {
				if err := e.Send(1, 0, encmpi.Bytes(payload)); err != nil {
					log.Fatal(err)
				}
			}
		case 1:
			for i := 0; i < msgs; i++ {
				buf, _, err := e.Recv(0, 0)
				if err != nil {
					log.Fatal(err)
				}
				buf.Release()
			}
		}
		c.Barrier()
		if c.Rank() == 0 {
			elapsed = time.Since(start)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return float64(size) * float64(msgs) / elapsed.Seconds() / 1e6
}

// runChunkedSim times the same stream on the simulated IB40G fabric in
// virtual time (deterministic). The encrypted modes model BoringSSL-256
// parallelized across the testbed's 8 cores (§V-C); serial and chunked use
// the identical engine so the comparison isolates the overlap alone.
func runChunkedSim(size, msgs int, mode string) float64 {
	spec := encmpi.PaperTestbed(2, 2)
	var elapsed time.Duration
	_, err := encmpi.RunSim(spec, encmpi.IB40G(), func(c *encmpi.Comm) {
		engine := func() encmpi.Engine {
			m, err := encmpi.NewEngine(encmpi.EngineSpec{
				Kind: "model", Library: "boringssl", Variant: "gcc485", KeyBits: 256, Threads: 8,
			})
			if err != nil {
				log.Fatal(err)
			}
			return m
		}
		var e *encmpi.EncryptedComm
		switch mode {
		case "plain":
			e = encmpi.EncryptWith(c, encmpi.Unencrypted(), encmpi.WithPipelineThreshold(-1))
		case "serial":
			e = encmpi.EncryptWith(c, engine(), encmpi.WithPipelineThreshold(-1))
		case "chunked":
			// Default geometry (256 KiB threshold, 128 KiB chunks): per-chunk
			// crypto (modeled, /8) sits well under the per-chunk wire time, so
			// the stream stays wire-bound.
			e = encmpi.EncryptWith(c, engine())
		}
		switch c.Rank() {
		case 0:
			for i := 0; i < msgs; i++ {
				if err := e.Send(1, 0, encmpi.Synthetic(size)); err != nil {
					log.Fatal(err)
				}
			}
		case 1:
			start := c.Proc().Now()
			for i := 0; i < msgs; i++ {
				buf, _, err := e.Recv(0, 0)
				if err != nil {
					log.Fatal(err)
				}
				buf.Release()
			}
			elapsed = c.Proc().Now() - start
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return float64(size) * float64(msgs) / elapsed.Seconds() / 1e6
}

// measureChunkedP2P is the acceptance suite of the transparent chunked
// overlap path (DESIGN.md §12): encrypted 1 MiB point-to-point bandwidth
// must land within ≈10% of the unencrypted baseline — and strictly above
// the serialized seal-whole-message path — on both the real TCP transport
// and the simulated InfiniBand fabric.
func measureChunkedP2P(key []byte, quick bool) []chunkedP2PEntry {
	const size = 1 << 20
	msgs, rounds := 32, 3
	if quick {
		msgs, rounds = 4, 1
	}

	tcp := chunkedP2PEntry{Transport: "tcp", Size: size, Msgs: msgs, Engine: "real-aesstd"}
	keep := func(dst *float64, mode string) {
		if v := runChunkedTCP(key, size, msgs, mode); v > *dst {
			*dst = v
		}
	}
	// Interleaved best-of sampling, like the multi-pair suite: host speed
	// drifts between invocations; the max under identical conditions is the
	// comparable statistic.
	for i := 0; i < rounds; i++ {
		keep(&tcp.PlainMBps, "plain")
		keep(&tcp.SerialMBps, "serial")
		keep(&tcp.ChunkedMBps, "chunked")
		keep(&tcp.ChunkedMBps, "chunked")
		keep(&tcp.SerialMBps, "serial")
		keep(&tcp.PlainMBps, "plain")
	}

	simMsgs := 16
	if quick {
		simMsgs = 4
	}
	sim := chunkedP2PEntry{Transport: "sim-ib40g", Size: size, Msgs: simMsgs, Engine: "model-boringssl-256/threads-8"}
	// Virtual time: one run per mode is exact.
	sim.PlainMBps = runChunkedSim(size, simMsgs, "plain")
	sim.SerialMBps = runChunkedSim(size, simMsgs, "serial")
	sim.ChunkedMBps = runChunkedSim(size, simMsgs, "chunked")

	out := []chunkedP2PEntry{tcp, sim}
	for i := range out {
		e := &out[i]
		if e.PlainMBps > 0 {
			e.OverheadVsPlainPct = (1 - e.ChunkedMBps/e.PlainMBps) * 100
		}
		if e.SerialMBps > 0 {
			e.GainVsSerialPct = (e.ChunkedMBps/e.SerialMBps - 1) * 100
		}
	}
	return out
}

// runShmRing times an encrypted session ping-pong over the shm transport at
// one size and ring configuration, returning one-way payload MB/s. The
// thresholds keep every size on the eager path (2 MiB eager window, chunked
// pipeline off) so the comparison isolates delivery — zero-copy slot ring
// versus the seed's pool-copy inline path — rather than protocol choice.
// Ping-pong keeps at most one slot in flight, so the ring run must never
// spill to the fallback.
func runShmRing(key []byte, size, iters int, ring bool, reg *encmpi.Registry) float64 {
	payload := bytes.Repeat([]byte{0xDA}, size)
	opts := []encmpi.Option{encmpi.WithEagerThreshold(2 << 20)}
	if ring {
		// Slots sized to the message (2x headroom for the AEAD frame, 64 KiB
		// floor) keep the slab working set proportional to the traffic; a
		// ping-pong holds one slot, so 4 slots is already generous.
		slot := 2 * size
		if slot < 64<<10 {
			slot = 64 << 10
		}
		opts = append(opts, encmpi.WithShmRing(4, slot))
	} else {
		opts = append(opts, encmpi.WithShmRing(-1, 0))
	}
	if reg != nil {
		opts = append(opts, encmpi.WithMetrics(reg))
	}
	var oneWay time.Duration
	err := encmpi.RunShm(2, func(c *encmpi.Comm) {
		sess, err := encmpi.NewSession(key)
		if err != nil {
			log.Fatal(err)
		}
		// Pipelined chunking off: it would route >=256 KiB messages through
		// the rendezvous path and bypass the eager delivery under test.
		e, err := sess.Attach(c, encmpi.WithPipelineThreshold(-1))
		if err != nil {
			log.Fatal(err)
		}
		peer := 1 - c.Rank()
		buf := encmpi.Bytes(payload)
		roundTrip := func() {
			if c.Rank() == 0 {
				e.Send(peer, 0, buf)
				if _, _, err := e.Recv(peer, 0); err != nil {
					log.Fatal(err)
				}
			} else {
				if _, _, err := e.Recv(peer, 0); err != nil {
					log.Fatal(err)
				}
				e.Send(peer, 0, buf)
			}
		}
		roundTrip() // warm-up: builds the rank-pair ring lazily
		start := time.Now()
		for i := 0; i < iters; i++ {
			roundTrip()
		}
		if c.Rank() == 0 {
			oneWay = time.Since(start) / time.Duration(2*iters)
		}
	}, opts...)
	if err != nil {
		log.Fatal(err)
	}
	return float64(size) / oneWay.Seconds() / 1e6
}

// measureShmRing is the acceptance suite of the zero-copy shm slot ring
// (DESIGN.md §14): encrypted eager ping-pong bandwidth with the ring must
// meet or beat the seed's inline pool-copy delivery across message sizes —
// the ring saves one full payload copy per message, so the gap should widen
// with size. Interleaved best-of sampling as in the other wall-clock suites;
// the timed runs carry no metrics registry, and the in-place/fallback
// evidence comes from one separate instrumented ring run.
func measureShmRing(key []byte, quick bool) []shmRingEntry {
	sizes := []int{4 << 10, 64 << 10, 256 << 10, 1 << 20}
	rounds := 3
	if quick {
		sizes = []int{4 << 10, 256 << 10}
		rounds = 1
	}
	var out []shmRingEntry
	for _, size := range sizes {
		iters := 256
		if size > 64<<10 {
			iters = 64
		}
		if quick {
			iters /= 8
		}
		e := shmRingEntry{Size: size, Iters: iters}
		keep := func(dst *float64, ring bool) {
			if v := runShmRing(key, size, iters, ring, nil); v > *dst {
				*dst = v
			}
		}
		for i := 0; i < rounds; i++ {
			keep(&e.RingMBps, true)
			keep(&e.InlineMBps, false)
			keep(&e.InlineMBps, false)
			keep(&e.RingMBps, true)
		}
		if e.InlineMBps > 0 {
			e.GainPct = (e.RingMBps/e.InlineMBps - 1) * 100
		}
		reg := encmpi.NewRegistry(2)
		runShmRing(key, size, iters, true, reg)
		snap := reg.Snapshot()
		e.SealsInPlace = snap.Total.Crypto.SealsInPlace
		e.OpensInPlace = snap.Total.Crypto.OpensInPlace
		e.Fallbacks = snap.Ring.Fallbacks
		out = append(out, e)
	}
	return out
}

// measureHearAllreduce is the acceptance suite of the additive-noise
// allreduce (DESIGN.md §16), run on the simulated Ethernet fabric in
// virtual time. The same int32-sum allreduce races four ways: the hear
// engine on its production path (a persistent plan, hierarchical on these
// shapes — mask once, combine ciphertext at every hop, unmask once, zero
// per-hop crypto), the same algebra on the flat recursive-doubling
// schedule, the AEAD reduce-then-seal comparator (per-hop seal/open around
// plaintext arithmetic, BoringSSL-256 parallelized across the testbed's 8
// cores), and the hierarchical AEAD allreduce (plaintext intra-node, sealed
// leader exchanges). The acceptance target: hear beats reduce-then-seal at
// every size ≥64 KiB at p=256.
func measureHearAllreduce(key []byte, quick bool) []hearAllreduceEntry {
	aeadEng, err := encmpi.NewEngine(encmpi.EngineSpec{
		Kind: "model", Library: "boringssl", Variant: "gcc485", KeyBits: 256, Threads: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	hearEng, err := encmpi.NewEngine(encmpi.EngineSpec{
		Kind: "hear", Library: "boringssl", Variant: "gcc485", KeyBits: 256, Workers: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	mkAEAD := func(int) encmpi.Engine { return aeadEng }
	mkHear := func(int) encmpi.Engine { return hearEng }

	type shape struct{ ranks, nodes int }
	shapes := []shape{{64, 8}, {256, 32}, {1024, 128}}
	sizes := []int{4 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	if quick {
		shapes = shapes[:1]
		sizes = []int{4 << 10, 256 << 10}
	}
	var out []hearAllreduceEntry
	for _, sh := range shapes {
		for _, size := range sizes {
			iters := 3
			if quick || sh.ranks >= 1024 {
				iters = 2
			}
			run := func(mk encmpi.EngineFactory, op encmpi.CollectiveOp) float64 {
				res, err := encmpi.Collective(encmpi.Eth10G(), mk, op, sh.ranks, sh.nodes, size, iters)
				if err != nil {
					log.Fatalf("hear_allreduce %s p=%d size=%d: %v", op, sh.ranks, size, err)
				}
				return res.MeanLat.Seconds() * 1e6
			}
			e := hearAllreduceEntry{
				Net: "eth10g", Ranks: sh.ranks, Nodes: sh.nodes, Size: size,
				HearUs:     run(mkHear, encmpi.OpHearPlanAllreduce),
				HearFlatUs: run(mkHear, encmpi.OpHearAllreduce),
				SealedUs:   run(mkAEAD, encmpi.OpAllreduceSealed),
				HierAeadUs: run(mkAEAD, encmpi.OpHierAllreduce),
				Library:    "boringssl/gcc485",
			}
			if e.HearUs > 0 {
				e.SpeedupVsSealedX = e.SealedUs / e.HearUs
				e.SpeedupVsHierAeadX = e.HierAeadUs / e.HearUs
			}
			out = append(out, e)
		}
	}
	return out
}

// measureSessionOverhead compares a full seal+open round trip through the
// legacy RealEngine (nonce-only, no additional data) against the session
// engine, which also derives the 45-byte context AAD, authenticates it, and
// admits the sequence into the replay window. Fresh wire is sealed for every
// open because the session engine — correctly — rejects a re-opened record
// as a replay. Best-of-N rounds on both sides squeeze out scheduler noise;
// the overhead target at 256 KiB is ≤2%.
func measureSessionOverhead(key []byte, quick bool) []sessionOverheadEntry {
	sizes := []int{4 << 10, 256 << 10}
	if quick {
		sizes = []int{256 << 10}
	}
	budget := 40 * time.Millisecond
	rounds := 5
	if quick {
		budget = 4 * time.Millisecond
		rounds = 2
	}

	legacy, err := encmpi.NewEngine(encmpi.EngineSpec{Kind: "real", Codec: "aesstd", Key: key})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := encmpi.NewSession(key)
	if err != nil {
		log.Fatal(err)
	}
	sessEng := sess.Engine()

	var out []sessionOverheadEntry
	for _, size := range sizes {
		payload := encmpi.Bytes(bytes.Repeat([]byte{0xAB}, size))
		roundTrip := func(e encmpi.Engine) func() {
			return func() {
				w := e.Seal(nil, payload)
				p, err := e.Open(nil, w)
				if err != nil {
					log.Fatalf("session_overhead @%d: %v", size, err)
				}
				p.Release()
				w.Release()
			}
		}
		entry := sessionOverheadEntry{Size: size}
		for i := 0; i < rounds; i++ {
			if v := timeOp(budget, roundTrip(legacy)); entry.LegacyNsOp == 0 || v < entry.LegacyNsOp {
				entry.LegacyNsOp = v
			}
			if v := timeOp(budget, roundTrip(sessEng)); entry.SessionNsOp == 0 || v < entry.SessionNsOp {
				entry.SessionNsOp = v
			}
		}
		if entry.LegacyNsOp > 0 {
			entry.OverheadPct = (entry.SessionNsOp/entry.LegacyNsOp - 1) * 100
		}
		out = append(out, entry)
	}
	return out
}
