package encmpi_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"encmpi"
)

func sessionKey(b byte) []byte { return bytes.Repeat([]byte{b}, 32) }

// findSession returns the snapshot entry for one session scope id.
func findSession(t *testing.T, snap encmpi.MetricsSnapshot, id string) encmpi.SessionSnapshot {
	t.Helper()
	for _, ss := range snap.Sessions {
		if ss.ID == id {
			return ss
		}
	}
	t.Fatalf("session %s missing from snapshot (have %d sessions)", id, len(snap.Sessions))
	return encmpi.SessionSnapshot{}
}

// TestSessionSmoke multiplexes two independent sessions over one job's
// shared transport: both exchange traffic concurrently under the same tags,
// which only works if each session's frames stay on their own wire lane. It
// runs over both the shm ring transport and TCP — lane demultiplexing is a
// transport contract, not a TCP feature. Referenced by scripts/check.sh.
func TestSessionSmoke(t *testing.T) {
	t.Run("shm", func(t *testing.T) { sessionSmoke(t, encmpi.RunShm) })
	t.Run("tcp", func(t *testing.T) { sessionSmoke(t, encmpi.RunTCP) })
}

func sessionSmoke(t *testing.T, run func(int, func(*encmpi.Comm), ...encmpi.Option) error) {
	keyA, keyB := sessionKey(0xA1), sessionKey(0xB2)
	const msgs = 32
	reg := encmpi.NewRegistry(2)
	var scopeA, scopeB string
	err := run(2, func(c *encmpi.Comm) {
		sessA, err := encmpi.NewSession(keyA)
		if err != nil {
			t.Error(err)
			return
		}
		sessB, err := encmpi.NewSession(keyB)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			scopeA, scopeB = sessA.ScopeID(), sessB.ScopeID()
		}
		eA, err := sessA.Attach(c)
		if err != nil {
			t.Error(err)
			return
		}
		eB, err := sessB.Attach(c)
		if err != nil {
			t.Error(err)
			return
		}

		// Both sessions run the same tag space at once: lane demultiplexing
		// is what keeps a B record from matching an A receive.
		var wg sync.WaitGroup
		for name, e := range map[string]*encmpi.EncryptedComm{"A": eA, "B": eB} {
			wg.Add(1)
			go func(name string, e *encmpi.EncryptedComm) {
				defer wg.Done()
				for i := 0; i < msgs; i++ {
					want := []byte(fmt.Sprintf("session %s message %d", name, i))
					if c.Rank() == 0 {
						if err := e.Send(1, i, encmpi.Bytes(want)); err != nil {
							t.Errorf("session %s send %d: %v", name, i, err)
						}
					} else {
						got, _, err := e.Recv(0, i)
						if err != nil {
							t.Errorf("session %s recv %d: %v", name, i, err)
							return
						}
						if !bytes.Equal(got.Data, want) {
							t.Errorf("session %s message %d: got %q", name, i, got.Data)
						}
					}
				}
			}(name, e)
		}
		wg.Wait()
	}, encmpi.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for _, id := range []string{scopeA, scopeB} {
		ss := findSession(t, snap, id)
		if ss.Sealed != msgs || ss.Opened != msgs {
			t.Errorf("session %s: sealed %d opened %d, want %d each", id, ss.Sealed, ss.Opened, msgs)
		}
		if ss.AuthFailures != 0 || ss.ReplayRejected != 0 || ss.StaleEpoch != 0 {
			t.Errorf("session %s: spurious rejections %+v", id, ss)
		}
	}
	if snap.UnattributedStrays != 0 {
		t.Errorf("unattributed strays: %d", snap.UnattributedStrays)
	}
}

// TestSessionSpliceRejected runs the cross-session splicing adversary: a
// ciphertext recorded on session A's lane is substituted for a session B
// record. The splice must fail AEAD authentication at session B (wrong key,
// wrong AAD) and be attributed as an auth failure — not survive as a stray.
func TestSessionSpliceRejected(t *testing.T) {
	keyA, keyB := sessionKey(0xC3), sessionKey(0xD4)
	reg := encmpi.NewRegistry(2)
	var scopeB string
	err := encmpi.RunTCP(2, func(c *encmpi.Comm) {
		sessA, _ := encmpi.NewSession(keyA)
		sessB, _ := encmpi.NewSession(keyB)
		if c.Rank() == 0 {
			scopeB = sessB.ScopeID()
		}
		eA, err := sessA.Attach(c)
		if err != nil {
			t.Error(err)
			return
		}
		eB, err := sessB.Attach(c)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			// The A record is stashed by the adversary as donor material,
			// then the B record's payload is replaced with it.
			if err := eA.Send(1, 0, encmpi.Bytes([]byte("donor from session A"))); err != nil {
				t.Errorf("send A: %v", err)
			}
			if err := eB.Send(1, 0, encmpi.Bytes([]byte("victim on session B"))); err != nil {
				t.Errorf("send B: %v", err)
			}
		} else {
			if _, _, err := eA.Recv(0, 0); err != nil {
				t.Errorf("session A recv (un-spliced): %v", err)
			}
			if _, _, err := eB.Recv(0, 0); err == nil {
				t.Error("session B accepted a record sealed by session A")
			}
		}
	},
		encmpi.WithMetrics(reg),
		encmpi.WithFaults(encmpi.FaultConfig{Mode: encmpi.FaultSpliceSession, MaxInject: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if snap.FaultsInjected == 0 {
		t.Error("no splice injected")
	}
	if ss := findSession(t, snap, scopeB); ss.AuthFailures == 0 {
		t.Errorf("splice not attributed to session B: %+v", ss)
	}
	if snap.Ranks[1].Crypto.AuthFailures == 0 {
		t.Error("splice not attributed to rank 1 as an auth failure")
	}
	if snap.UnattributedStrays != 0 {
		t.Errorf("spliced record survived as a stray: %d", snap.UnattributedStrays)
	}
}

// TestSessionReflectRejected bounces rank 0's record straight back at it
// with the endpoints swapped. The bounce arrives before the genuine reply
// and matches rank 0's posted receive, where the nonce-vs-match source check
// rejects it as an auth failure; the honest reply still goes through on the
// next receive.
func TestSessionReflectRejected(t *testing.T) {
	key := sessionKey(0xE5)
	reg := encmpi.NewRegistry(2)
	var scope string
	err := encmpi.RunShm(2, func(c *encmpi.Comm) {
		sess, err := encmpi.NewSession(key)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			scope = sess.ScopeID()
		}
		e, err := sess.Attach(c)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			if err := e.Send(1, 0, encmpi.Bytes([]byte("ping"))); err != nil {
				t.Errorf("send: %v", err)
			}
			// First receive matches the reflected copy of our own record.
			if _, _, err := e.Recv(1, 0); err == nil {
				t.Error("reflected record accepted")
			}
			// The genuine reply is next in line.
			got, _, err := e.Recv(1, 0)
			if err != nil {
				t.Errorf("honest reply after rejected reflection: %v", err)
			} else if !bytes.Equal(got.Data, []byte("pong")) {
				t.Errorf("reply payload: %q", got.Data)
			}
		} else {
			if _, _, err := e.Recv(0, 0); err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if err := e.Send(0, 0, encmpi.Bytes([]byte("pong"))); err != nil {
				t.Errorf("reply: %v", err)
			}
		}
	},
		encmpi.WithMetrics(reg),
		encmpi.WithFaults(encmpi.FaultConfig{Mode: encmpi.FaultReflect, MaxInject: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if ss := findSession(t, snap, scope); ss.AuthFailures == 0 {
		t.Errorf("reflection not attributed as a session auth failure: %+v", ss)
	}
	if snap.Ranks[0].Crypto.AuthFailures == 0 {
		t.Error("reflection not attributed to rank 0")
	}
	if snap.UnattributedStrays != 0 {
		t.Errorf("reflected record survived as a stray: %d", snap.UnattributedStrays)
	}
}

// TestSessionReplayRejected replays a genuine ciphertext. The duplicate
// matches the receiver's second posted receive and must be rejected by the
// replay window as an auth failure — the seq-window heuristic of the legacy
// ReplayGuard is not involved.
func TestSessionReplayRejected(t *testing.T) {
	key := sessionKey(0xF6)
	reg := encmpi.NewRegistry(2)
	var scope string
	err := encmpi.RunShm(2, func(c *encmpi.Comm) {
		sess, err := encmpi.NewSession(key)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			scope = sess.ScopeID()
		}
		e, err := sess.Attach(c)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			// The adversary captures the first record and substitutes its
			// ciphertext for the second one's payload.
			if err := e.Send(1, 0, encmpi.Bytes([]byte("once"))); err != nil {
				t.Errorf("send: %v", err)
			}
			if err := e.Send(1, 0, encmpi.Bytes([]byte("twice"))); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			if _, _, err := e.Recv(0, 0); err != nil {
				t.Errorf("genuine recv: %v", err)
			}
			if _, _, err := e.Recv(0, 0); err == nil {
				t.Error("replayed record accepted")
			}
		}
	},
		encmpi.WithMetrics(reg),
		encmpi.WithFaults(encmpi.FaultConfig{Mode: encmpi.FaultReplay, MaxInject: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	ss := findSession(t, snap, scope)
	if ss.ReplayRejected == 0 || ss.AuthFailures == 0 {
		t.Errorf("replay not attributed (replay %d, auth %d)", ss.ReplayRejected, ss.AuthFailures)
	}
	if snap.UnattributedStrays != 0 {
		t.Errorf("replayed record survived as a stray: %d", snap.UnattributedStrays)
	}
}

// sessionRekeyHammer drives Send/Isend/chunked traffic through a session
// while both endpoints roll epochs mid-stream from a side goroutine. Honest
// traffic must never fail: in-flight old-epoch records (including chunked
// rendezvous segments mid-message) drain inside the grace window, and a
// peer that rekeyed first is opened via the derived-ahead epoch.
func sessionRekeyHammer(t *testing.T, run func(int, func(*encmpi.Comm), ...encmpi.Option) error, msgs int) {
	key := sessionKey(0x77)
	big := bytes.Repeat([]byte{0x5A}, 384<<10) // above the chunking threshold
	reg := encmpi.NewRegistry(2)
	var scope string
	err := run(2, func(c *encmpi.Comm) {
		sess, err := encmpi.NewSession(key)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			scope = sess.ScopeID()
		}
		e, err := sess.Attach(c)
		if err != nil {
			t.Error(err)
			return
		}

		// Both ranks rekey on their own clocks: epochs roll mid-message and
		// the two ends are routinely one epoch apart.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			interval := 3 * time.Millisecond
			if c.Rank() == 1 {
				interval = 5 * time.Millisecond
			}
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					if err := sess.Rekey(); err != nil {
						t.Errorf("rank %d rekey: %v", c.Rank(), err)
						return
					}
				}
			}
		}()

		for i := 0; i < msgs; i++ {
			small := []byte(fmt.Sprintf("small %d", i))
			if c.Rank() == 0 {
				if err := e.Send(1, 2*i, encmpi.Bytes(small)); err != nil {
					t.Errorf("send %d: %v", i, err)
				}
				r := e.Isend(1, 2*i+1, encmpi.Bytes(big))
				if _, _, err := e.Wait(r); err != nil {
					t.Errorf("isend %d: %v", i, err)
				}
			} else {
				if _, _, err := e.Recv(0, 2*i); err != nil {
					t.Errorf("recv small %d: %v", i, err)
				}
				got, _, err := e.Recv(0, 2*i+1)
				if err != nil {
					t.Errorf("recv big %d: %v", i, err)
				} else if got.Len() != len(big) {
					t.Errorf("big %d: %d bytes, want %d", i, got.Len(), len(big))
				}
			}
		}
		close(stop)
		wg.Wait()
	}, encmpi.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	ss := findSession(t, snap, scope)
	if ss.AuthFailures != 0 || ss.ReplayRejected != 0 || ss.StaleEpoch != 0 {
		t.Errorf("honest traffic rejected under rekey: %+v", ss)
	}
	if ss.Rekeys == 0 || ss.Epoch == 0 {
		t.Errorf("no epoch ever rolled (rekeys %d, epoch %d)", ss.Rekeys, ss.Epoch)
	}
	if snap.UnattributedStrays != 0 {
		t.Errorf("strays under rekey: %d", snap.UnattributedStrays)
	}
}

// TestSessionRekeyUnderTraffic is the mid-transfer rekey gate; scripts/
// check.sh runs the package under -race, which makes this a concurrency
// check as much as a correctness one.
func TestSessionRekeyUnderTraffic(t *testing.T) {
	msgs := 30
	if testing.Short() {
		msgs = 8
	}
	t.Run("shm", func(t *testing.T) { sessionRekeyHammer(t, encmpi.RunShm, msgs) })
	t.Run("tcp", func(t *testing.T) { sessionRekeyHammer(t, encmpi.RunTCP, msgs/2) })
}

// TestSessionStaleEpochAfterGrace checks the hard boundary: once a retired
// epoch's grace window has passed, its records are rejected as stale-epoch
// auth failures, not opened.
func TestSessionStaleEpochAfterGrace(t *testing.T) {
	key := sessionKey(0x88)
	const grace = 50 * time.Millisecond
	reg := encmpi.NewRegistry(2)
	var scope string
	err := encmpi.RunShm(2, func(c *encmpi.Comm) {
		sess, err := encmpi.NewSession(key, encmpi.WithEpochGrace(grace))
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 1 {
			scope = sess.ScopeID()
		}
		e, err := sess.Attach(c)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			// Sealed under epoch 0; sits in rank 1's unmatched queue.
			if err := e.Send(1, 0, encmpi.Bytes([]byte("left on the shelf"))); err != nil {
				t.Errorf("send: %v", err)
			}
		}
		c.Barrier()
		if c.Rank() == 1 {
			if err := sess.Rekey(); err != nil {
				t.Errorf("rekey: %v", err)
			}
			time.Sleep(2 * grace)
			if _, _, err := e.Recv(0, 0); err == nil {
				t.Error("record from an expired epoch was accepted")
			}
		}
	}, encmpi.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	ss := findSession(t, snap, scope)
	if ss.StaleEpoch == 0 || ss.AuthFailures == 0 {
		t.Errorf("stale-epoch rejection not attributed (stale %d, auth %d)", ss.StaleEpoch, ss.AuthFailures)
	}
}

// TestSessionCollectivesAndRekey runs the encrypted collectives through a
// session across an epoch roll: collective records carry their own AAD
// shapes (fan-out Dst wildcard, per-pair bindings) and must keep verifying
// after Rekey.
func TestSessionCollectivesAndRekey(t *testing.T) {
	key := sessionKey(0x99)
	err := encmpi.RunShm(4, func(c *encmpi.Comm) {
		sess, err := encmpi.NewSession(key)
		if err != nil {
			t.Error(err)
			return
		}
		e, err := sess.Attach(c)
		if err != nil {
			t.Error(err)
			return
		}
		for round := 0; round < 2; round++ {
			got, err := e.Bcast(0, encmpi.Bytes([]byte("root says")))
			if err != nil || !bytes.Equal(got.Data, []byte("root says")) {
				t.Errorf("round %d bcast: %v %q", round, err, got.Data)
			}
			mine := encmpi.Bytes([]byte(fmt.Sprintf("rank %d", c.Rank())))
			all, err := e.Allgather(mine)
			if err != nil {
				t.Errorf("round %d allgather: %v", round, err)
			} else {
				for i, b := range all {
					if want := fmt.Sprintf("rank %d", i); string(b.Data) != want {
						t.Errorf("round %d allgather[%d] = %q", round, i, b.Data)
					}
				}
			}
			blocks := make([]encmpi.Buffer, e.Size())
			for d := range blocks {
				blocks[d] = encmpi.Bytes([]byte(fmt.Sprintf("%d->%d", c.Rank(), d)))
			}
			res, err := e.Alltoall(blocks)
			if err != nil {
				t.Errorf("round %d alltoall: %v", round, err)
			} else {
				for i, b := range res {
					if want := fmt.Sprintf("%d->%d", i, c.Rank()); string(b.Data) != want {
						t.Errorf("round %d alltoall[%d] = %q", round, i, b.Data)
					}
				}
			}
			if round == 0 {
				if err := sess.Rekey(); err != nil {
					t.Errorf("rekey: %v", err)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSessionOptionValidation pins the facade's constructor contract.
func TestSessionOptionValidation(t *testing.T) {
	if _, err := encmpi.NewSession(sessionKey(1)[:5]); err == nil {
		t.Error("short key accepted")
	}
	if _, err := encmpi.NewSession(sessionKey(1), encmpi.WithSessionCodec("ccmsoft")); err == nil {
		t.Error("CCM codec accepted; sessions require AAD support")
	}
	if _, err := encmpi.NewSession(sessionKey(1), encmpi.WithSessionCodec("nope")); err == nil {
		t.Error("unknown codec accepted")
	}
	s, err := encmpi.NewSession(sessionKey(2), encmpi.WithSessionID(7))
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != 7 {
		t.Errorf("ID() = %d, want 7", s.ID())
	}
	if s.Lane() == 0 {
		t.Error("session landed on the legacy lane 0")
	}
	if s.Epoch() != 0 {
		t.Errorf("fresh session epoch = %d", s.Epoch())
	}
}
