module encmpi

go 1.22
