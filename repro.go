package encmpi

import (
	"io"
	"time"

	"encmpi/internal/costmodel"
	"encmpi/internal/harness"
	"encmpi/internal/nas"
)

// NAS benchmark skeletons (paper §V).
type (
	// NASParams holds a kernel instance's geometry.
	NASParams = nas.Params
	// NASResult reports one simulated kernel run.
	NASResult = nas.Result
)

// NASKernels lists the implemented kernels (bt, cg, ft, is, lu, mg, sp).
func NASKernels() []string { return nas.Kernels() }

// NASParamsFor returns the published geometry of a kernel class.
func NASParamsFor(kernel string, class byte) (NASParams, error) {
	return nas.ParamsFor(kernel, class)
}

// RunNASKernel runs a kernel's communication skeleton on an existing
// encrypted communicator (e.g. inside a RunSim body).
func RunNASKernel(e *EncryptedComm, p NASParams, computePerIter time.Duration) {
	nas.RunKernel(e, p, computePerIter)
}

// RunNAS launches a kernel on the simulated cluster with one engine per
// rank.
func RunNAS(kernel string, class byte, ranks, nodes int, cfg NetConfig,
	mk EngineFactory, computePerIter time.Duration) (NASResult, error) {
	return nas.Run(kernel, class, ranks, nodes, cfg, mk, computePerIter)
}

// NASCalibrate derives a kernel's per-iteration compute budget from a
// target wall time (the paper's Ethernet baselines are the canonical
// targets; see NASEthBaselineSeconds).
func NASCalibrate(kernel string, class byte, ranks, nodes int, cfg NetConfig, targetSeconds float64) (time.Duration, error) {
	return nas.Calibrate(kernel, class, ranks, nodes, cfg, targetSeconds)
}

// NASEthBaselineSeconds returns the paper's Table IV unencrypted Ethernet
// baselines, keyed by kernel name.
func NASEthBaselineSeconds() map[string]float64 { return nas.EthBaselineSeconds }

// NASIBBaselineSeconds returns the paper's InfiniBand baselines, keyed by
// kernel name.
func NASIBBaselineSeconds() map[string]float64 { return nas.IBBaselineSeconds }

// Reproduction harness: one runnable experiment per table/figure of the
// paper's evaluation.
type (
	// ReproOptions tunes a harness run.
	ReproOptions = harness.Options
	// Experiment is one regenerable paper artifact.
	Experiment = harness.Experiment
)

// Experiments lists every regenerable paper artifact.
func Experiments() []Experiment { return harness.Experiments() }

// LookupExperiment finds an experiment by ID (e.g. "table1", "fig4").
func LookupExperiment(id string) (Experiment, error) { return harness.Lookup(id) }

// RunAllExperiments regenerates every table and figure, writing the report
// to w.
func RunAllExperiments(o ReproOptions, w io.Writer) error { return harness.RunAll(o, w) }

// Calibrated library cost models (paper Figs. 2 and 9).
type (
	// LibraryProfile is a calibrated per-library performance curve.
	LibraryProfile = costmodel.Profile
	// LibraryVariant selects the compile toolchain of a profile.
	LibraryVariant = costmodel.Variant
)

// The two toolchain variants the paper reports.
const (
	GCC485  LibraryVariant = costmodel.GCC485
	MVAPICH LibraryVariant = costmodel.MVAPICH
)

// Libraries lists the modeled cryptographic libraries.
func Libraries() []string { return costmodel.Libraries() }

// LookupLibrary returns the calibrated profile for a library, variant, and
// key length.
func LookupLibrary(library string, v LibraryVariant, keyBits int) (LibraryProfile, error) {
	return costmodel.Lookup(library, v, keyBits)
}
