.PHONY: build test bench check

build:
	go build ./...

test:
	go test ./...

# `bench` regenerates the committed BENCH_PR8.json snapshot (QUICK=1
# ./scripts/bench.sh for a bounded smoke run), then the testing.B suite.
bench:
	./scripts/bench.sh
	go test -bench=. -benchmem ./...

# Extended tier-1 gate: vet + race-detector tests + fuzz smokes of every
# wire-decoder target. FUZZTIME=30s make check lengthens the fuzz budget.
check:
	./scripts/check.sh
