.PHONY: build test bench check

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...

# Extended tier-1 gate: vet + race-detector tests + fuzz smokes of every
# wire-decoder target. FUZZTIME=30s make check lengthens the fuzz budget.
check:
	./scripts/check.sh
